//! Scenario description and single-job execution.

use std::sync::Arc;

use lisa_bits::Bits;
use lisa_core::Model;
use lisa_sim::{SimMode, Simulator, Snapshot};

use crate::report::JobResult;

/// A golden expectation checked after a scenario finishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Check {
    /// Resource name (register file, memory, scalar register…).
    pub resource: String,
    /// Element index for array resources; `None` for scalars.
    pub index: Option<i64>,
    /// Expected value, compared modulo the resource's declared width.
    pub expected: i64,
}

/// Why a job failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobError {
    /// The scenario could not be set up (bad resource name, snapshot
    /// mismatch, compiled lowering failure…).
    Setup(String),
    /// Simulation raised a runtime error (including an exhausted step
    /// budget).
    Sim(String),
    /// A golden check did not hold.
    Check {
        /// Resource checked.
        resource: String,
        /// Element index, if the resource is an array.
        index: Option<i64>,
        /// Value found.
        got: i64,
        /// Value expected.
        expected: i64,
    },
    /// The job panicked; the panic was contained to this job.
    Panic(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Setup(msg) => write!(f, "setup failed: {msg}"),
            JobError::Sim(msg) => write!(f, "simulation failed: {msg}"),
            JobError::Check { resource, index, got, expected } => match index {
                Some(i) => write!(f, "check failed: {resource}[{i}] = {got}, expected {expected}"),
                None => write!(f, "check failed: {resource} = {got}, expected {expected}"),
            },
            JobError::Panic(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// One batch job: everything needed to run a simulation to completion
/// and judge the result.
///
/// Construct with [`Scenario::new`] and refine with the builder methods;
/// all fields are public for direct assembly too. Scenarios borrow their
/// model (`&'m Model`) and are `Sync`, so a slice of them can be shared
/// across worker threads without cloning model databases.
#[derive(Clone)]
pub struct Scenario<'m> {
    /// Display name, used in reports (e.g. `vliw_dot_32@Compiled`).
    pub name: String,
    /// The model to simulate.
    pub model: &'m Model,
    /// Execution backend.
    pub mode: SimMode,
    /// `PROGRAM_MEMORY` resource the program loads into (ignored when
    /// [`Scenario::program`] is empty).
    pub program_memory: String,
    /// Load address of the first program word.
    pub origin: u64,
    /// Program image.
    pub program: Vec<u128>,
    /// Initial data pokes: `(resource, index, value)`; the index is
    /// ignored for scalar resources.
    pub data: Vec<(String, i64, i64)>,
    /// Golden expectations verified after the run.
    pub checks: Vec<Check>,
    /// Scalar resource that halts the run when nonzero; `None` runs
    /// exactly [`Scenario::max_steps`] control steps.
    pub halt_flag: Option<String>,
    /// Step budget (exceeding it with a halt flag set is a
    /// [`JobError::Sim`] failure).
    pub max_steps: u64,
    /// Checkpoint to fork from instead of zeroed reset state.
    pub base: Option<Arc<Snapshot>>,
    /// Collect a per-instruction [`lisa_trace::Profile`] for this job
    /// (adds per-event aggregation overhead to the run).
    pub profile: bool,
}

impl std::fmt::Debug for Scenario<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("mode", &self.mode)
            .field("program_words", &self.program.len())
            .field("checks", &self.checks.len())
            .field("max_steps", &self.max_steps)
            .field("forked", &self.base.is_some())
            .finish_non_exhaustive()
    }
}

impl<'m> Scenario<'m> {
    /// A scenario with no program, no checks, and a 10 000-step budget.
    pub fn new(name: impl Into<String>, model: &'m Model, mode: SimMode) -> Scenario<'m> {
        Scenario {
            name: name.into(),
            model,
            mode,
            program_memory: String::new(),
            origin: 0,
            program: Vec::new(),
            data: Vec::new(),
            checks: Vec::new(),
            halt_flag: None,
            max_steps: 10_000,
            base: None,
            profile: false,
        }
    }

    /// Sets the program image and where it loads.
    #[must_use]
    pub fn program(mut self, memory: impl Into<String>, origin: u64, words: Vec<u128>) -> Self {
        self.program_memory = memory.into();
        self.origin = origin;
        self.program = words;
        self
    }

    /// Adds an initial data write (`index` ignored for scalars).
    #[must_use]
    pub fn poke(mut self, resource: impl Into<String>, index: i64, value: i64) -> Self {
        self.data.push((resource.into(), index, value));
        self
    }

    /// Adds a golden check.
    #[must_use]
    pub fn expect(
        mut self,
        resource: impl Into<String>,
        index: Option<i64>,
        expected: i64,
    ) -> Self {
        self.checks.push(Check { resource: resource.into(), index, expected });
        self
    }

    /// Halts when the named scalar becomes nonzero.
    #[must_use]
    pub fn halt_on(mut self, flag: impl Into<String>) -> Self {
        self.halt_flag = Some(flag.into());
        self
    }

    /// Sets the step budget.
    #[must_use]
    pub fn steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Forks from a checkpoint instead of zeroed reset state.
    #[must_use]
    pub fn from_snapshot(mut self, base: Arc<Snapshot>) -> Self {
        self.base = Some(base);
        self
    }

    /// Collects a per-instruction execution profile for this job.
    #[must_use]
    pub fn profiled(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }
}

/// Runs one scenario to completion: build a simulator, restore the base
/// checkpoint if any, load program and data, run to the halt condition,
/// then verify every check.
///
/// This is the function [`crate::BatchRunner`] invokes on worker
/// threads; it is public so single jobs can be run inline (the CLI's
/// `--workers 0` debugging path, tests).
///
/// # Errors
///
/// Any stage maps to the matching [`JobError`] variant.
pub fn run_scenario(sc: &Scenario<'_>) -> Result<JobResult, JobError> {
    run_scenario_with(sc, None)
}

/// [`run_scenario`] with an optional span context attached to the
/// simulator, so the job's phases (snapshot restore, predecode, cycle
/// chunks) land as children of the caller's span tree. `None` is exactly
/// [`run_scenario`].
///
/// # Errors
///
/// Any stage maps to the matching [`JobError`] variant.
pub fn run_scenario_with(
    sc: &Scenario<'_>,
    spans: Option<&lisa_spans::SpanScope>,
) -> Result<JobResult, JobError> {
    let started = std::time::Instant::now();
    let setup = |e: lisa_sim::SimError| JobError::Setup(e.to_string());

    let mut sim = Simulator::new(sc.model, sc.mode).map_err(setup)?;
    sim.set_spans(spans.cloned());
    if let Some(base) = &sc.base {
        sim.restore(base).map_err(setup)?;
    }

    if !sc.program.is_empty() {
        let res = sc
            .model
            .resource_by_name(&sc.program_memory)
            .ok_or_else(|| {
                JobError::Setup(format!("unknown program memory `{}`", sc.program_memory))
            })?
            .clone();
        for (i, &word) in sc.program.iter().enumerate() {
            let value = Bits::from_u128_wrapped(res.ty.width(), word);
            let addr = sc.origin as i64 + i as i64;
            sim.state_mut().write(&res, &[addr], value).map_err(setup)?;
        }
    }
    for (resource, index, value) in &sc.data {
        let res = sc
            .model
            .resource_by_name(resource)
            .ok_or_else(|| JobError::Setup(format!("unknown resource `{resource}`")))?
            .clone();
        let indices: &[i64] = if res.is_array() { std::slice::from_ref(index) } else { &[] };
        sim.state_mut().write_int(&res, indices, *value).map_err(setup)?;
    }
    if sc.mode != SimMode::Interpretive {
        sim.predecode_program_memory();
    }
    if sc.profile {
        sim.enable_profile();
    }

    let cycles = match &sc.halt_flag {
        Some(flag) => {
            let halt = sc
                .model
                .resource_by_name(flag)
                .ok_or_else(|| JobError::Setup(format!("unknown halt flag `{flag}`")))?
                .clone();
            sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, sc.max_steps)
                .map_err(|e| JobError::Sim(e.to_string()))?
                .cycles
        }
        None => {
            sim.run(sc.max_steps).map_err(|e| JobError::Sim(e.to_string()))?;
            sc.max_steps
        }
    };

    for check in &sc.checks {
        let res = sc.model.resource_by_name(&check.resource).ok_or_else(|| {
            JobError::Setup(format!("unknown check resource `{}`", check.resource))
        })?;
        let indices: &[i64] = match (&check.index, res.is_array()) {
            (Some(i), true) => std::slice::from_ref(i),
            _ => &[],
        };
        let got = sim.state().read(res, indices).map_err(|e| JobError::Setup(e.to_string()))?;
        // Compare modulo the declared width, like the kernel harness.
        let expected = Bits::from_i128_wrapped(res.ty.width(), i128::from(check.expected));
        if got != expected {
            return Err(JobError::Check {
                resource: check.resource.clone(),
                index: check.index,
                got: sim.state().read_int(res, indices).unwrap_or_default(),
                expected: check.expected,
            });
        }
    }

    Ok(JobResult {
        cycles,
        stats: *sim.stats(),
        state_digest: sim.state().digest(),
        profile: sim.take_profile(),
        elapsed: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn halting_counter() -> Model {
        Model::from_source(
            r#"RESOURCE {
                   PROGRAM_COUNTER int pc;
                   REGISTER int r0;
                   CONTROL_REGISTER bit halt;
               }
               OPERATION main {
                   BEHAVIOR { r0 = r0 + 1; halt = r0 == 5; pc = pc + 1; }
               }"#,
        )
        .expect("model builds")
    }

    #[test]
    fn halt_flag_stops_the_run_and_checks_pass() {
        let model = halting_counter();
        let sc = Scenario::new("halt", &model, SimMode::Interpretive)
            .halt_on("halt")
            .steps(100)
            .expect("r0", None, 5);
        let result = run_scenario(&sc).expect("job succeeds");
        assert_eq!(result.cycles, 5);
        assert_eq!(result.stats.cycles, 5);
    }

    #[test]
    fn failed_check_reports_got_and_expected() {
        let model = halting_counter();
        let sc = Scenario::new("bad", &model, SimMode::Interpretive)
            .halt_on("halt")
            .expect("r0", None, 7);
        match run_scenario(&sc) {
            Err(JobError::Check { resource, got, expected, .. }) => {
                assert_eq!(resource, "r0");
                assert_eq!(got, 5);
                assert_eq!(expected, 7);
            }
            other => panic!("expected check failure, got {other:?}"),
        }
    }

    #[test]
    fn step_budget_exhaustion_is_a_sim_error() {
        let model = halting_counter();
        let sc = Scenario::new("budget", &model, SimMode::Interpretive).halt_on("halt").steps(3);
        assert!(matches!(run_scenario(&sc), Err(JobError::Sim(_))));
    }

    #[test]
    fn data_pokes_and_snapshot_forks_apply() {
        let model = halting_counter();
        // Poke r0 close to the halt value: halts in 2 steps.
        let sc =
            Scenario::new("poke", &model, SimMode::Interpretive).poke("r0", 0, 3).halt_on("halt");
        assert_eq!(run_scenario(&sc).expect("ok").cycles, 2);

        // Fork from a warm simulator 4 steps in: halts in 1 step.
        let mut warm = Simulator::new(&model, SimMode::Interpretive).unwrap();
        warm.run(4).unwrap();
        let snap = Arc::new(warm.snapshot());
        let sc = Scenario::new("fork", &model, SimMode::Interpretive)
            .from_snapshot(snap)
            .halt_on("halt");
        assert_eq!(run_scenario(&sc).expect("ok").cycles, 1);
    }

    #[test]
    fn profiled_scenario_returns_a_profile() {
        let model = halting_counter();
        let sc = Scenario::new("plain", &model, SimMode::Interpretive).halt_on("halt");
        assert!(run_scenario(&sc).expect("ok").profile.is_none(), "profiling is opt-in");

        let sc =
            Scenario::new("profiled", &model, SimMode::Interpretive).halt_on("halt").profiled(true);
        let result = run_scenario(&sc).expect("ok");
        let profile = result.profile.expect("profile collected");
        assert_eq!(profile.cycles, result.cycles);
        assert_eq!(profile.op_execs["main"], 5);
        assert!(profile.register_writes > 0, "r0/halt/pc writes recorded");
    }

    #[test]
    fn unknown_names_fail_setup() {
        let model = halting_counter();
        for sc in [
            Scenario::new("a", &model, SimMode::Interpretive).program("nope", 0, vec![1]),
            Scenario::new("b", &model, SimMode::Interpretive).poke("nope", 0, 1),
            Scenario::new("c", &model, SimMode::Interpretive).halt_on("nope"),
            Scenario::new("d", &model, SimMode::Interpretive).expect("nope", None, 0),
        ] {
            assert!(matches!(run_scenario(&sc), Err(JobError::Setup(_))), "{}", sc.name);
        }
    }
}

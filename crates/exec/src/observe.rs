//! Batch observability: live progress heartbeats and metrics export.
//!
//! [`BatchRunner::run`](crate::BatchRunner::run) is deliberately silent —
//! it returns a deterministic report and nothing else. Long campaigns
//! want more: a heartbeat while the batch runs (jobs done, failures so
//! far, ETA) and counters/latency histograms accumulated into a
//! [`lisa_metrics::Registry`] shared with the rest of the process.
//! [`BatchObserver`] carries both concerns;
//! [`BatchRunner::run_observed`](crate::BatchRunner::run_observed)
//! consumes one. Neither changes job outcomes: observed and unobserved
//! runs of the same scenario list produce equal `jobs`.

use std::time::Duration;

use lisa_metrics::Registry;
use lisa_spans::SpanScope;

/// A point-in-time view of a running batch, handed to the heartbeat
/// callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchProgress {
    /// Jobs in the batch.
    pub total: usize,
    /// Jobs finished (successes and failures).
    pub done: usize,
    /// Jobs finished with an error so far.
    pub failed: usize,
    /// Wall-clock time since the batch started.
    pub elapsed: Duration,
    /// Estimated time remaining, extrapolated from throughput so far
    /// (`None` until the first job lands).
    pub eta: Option<Duration>,
}

impl BatchProgress {
    /// A one-line human-readable rendering, e.g.
    /// `12/48 jobs (1 failed), 3.2 s elapsed, ETA 9.6 s`.
    #[must_use]
    pub fn line(&self) -> String {
        let mut out = format!(
            "{}/{} jobs ({} failed), {:.1} s elapsed",
            self.done,
            self.total,
            self.failed,
            self.elapsed.as_secs_f64()
        );
        if let Some(eta) = self.eta {
            out.push_str(&format!(", ETA {:.1} s", eta.as_secs_f64()));
        }
        out
    }
}

/// A periodic progress callback for a running batch.
pub struct Heartbeat<'a> {
    /// How often to emit (a final synchronous beat also fires when the
    /// batch completes).
    pub interval: Duration,
    /// Receives each progress sample; called from a monitor thread, so
    /// it must be `Sync` (e.g. write to stderr or a mutex-guarded log).
    pub emit: Box<dyn Fn(&BatchProgress) + Sync + 'a>,
}

/// What to observe while a batch runs. The default observes nothing,
/// making [`BatchRunner::run_observed`](crate::BatchRunner::run_observed)
/// equivalent to [`BatchRunner::run`](crate::BatchRunner::run).
#[derive(Default)]
pub struct BatchObserver<'a> {
    /// Registry receiving job counters
    /// (`lisa_exec_jobs_{started,succeeded,failed,panicked}_total`) and
    /// the per-scenario `lisa_exec_job_duration_us` latency histogram.
    pub metrics: Option<&'a Registry>,
    /// Periodic progress callback.
    pub heartbeat: Option<Heartbeat<'a>>,
    /// Span context for wall-clock tracing: the batch becomes one
    /// `batch` root span with a worker-stamped `job` span (and its
    /// `job_queue_wait` split) per scenario, and the simulator phases of
    /// each job nest beneath it.
    pub spans: Option<SpanScope>,
}

impl std::fmt::Debug for BatchObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchObserver")
            .field("metrics", &self.metrics.is_some())
            .field("heartbeat", &self.heartbeat.as_ref().map(|h| h.interval))
            .field("spans", &self.spans.is_some())
            .finish()
    }
}

impl<'a> BatchObserver<'a> {
    /// An observer that records nothing.
    #[must_use]
    pub fn new() -> BatchObserver<'a> {
        BatchObserver::default()
    }

    /// Accumulates job counters and latency histograms into `registry`.
    #[must_use]
    pub fn with_metrics(mut self, registry: &'a Registry) -> BatchObserver<'a> {
        self.metrics = Some(registry);
        self
    }

    /// Emits a progress sample roughly every `interval` while the batch
    /// runs, plus one final sample when it completes.
    #[must_use]
    pub fn with_heartbeat(
        mut self,
        interval: Duration,
        emit: impl Fn(&BatchProgress) + Sync + 'a,
    ) -> BatchObserver<'a> {
        self.heartbeat = Some(Heartbeat { interval, emit: Box::new(emit) });
        self
    }

    /// Records wall-clock spans for the batch and its jobs under
    /// `scope` (typically a fresh trace on a shared recorder).
    #[must_use]
    pub fn with_spans(mut self, scope: SpanScope) -> BatchObserver<'a> {
        self.spans = Some(scope);
        self
    }
}

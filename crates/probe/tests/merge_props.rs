//! Property tests for the `ArchProfile` merge algebra, mirroring the
//! `Profile`/`Snapshot` merge suites: associative, commutative, with
//! the empty profile as identity — so per-run architecture profiles
//! fold into fleet aggregates in any order. Plus heatmap bucket
//! boundary properties (coarsening and merging never lose accesses).

use lisa_probe::{ArchProfile, Heatmap};
use proptest::prelude::*;

const STAGES: [&str; 3] = ["pipe.FE", "pipe.EX", "pipe.WB"];
const OPS: [&str; 3] = ["add", "mac", "nop"];
const MEMS: [&str; 2] = ["dmem", "pmem"];
const PROBES: [&str; 3] = ["watch dmem", "reg acc", "trace 5"];

type Samples = Vec<(u8, u64)>;
/// `(memory index, bucket-size exponent, write?, addresses)`.
type HeatSamples = Vec<(u8, u8, bool, Vec<u64>)>;

fn counts() -> impl Strategy<Value = Samples> {
    proptest::collection::vec((0u8..3, 1u64..100), 0..=6)
}

fn heats() -> impl Strategy<Value = HeatSamples> {
    proptest::collection::vec(
        (0u8..2, 0u8..5, any::<bool>(), proptest::collection::vec(0u64..512, 1..=8)),
        0..=4,
    )
}

fn profile_strategy() -> impl Strategy<Value = ArchProfile> {
    (0u64..1000, counts(), counts(), counts(), heats(), counts()).prop_map(build)
}

fn build(
    (cycles, stages, ops, units, heats, hits): (
        u64,
        Samples,
        Samples,
        Samples,
        HeatSamples,
        Samples,
    ),
) -> ArchProfile {
    let mut p = ArchProfile::new();
    p.cycles = cycles;
    let bump =
        |map: &mut std::collections::BTreeMap<String, u64>, pool: &[&str], samples: &Samples| {
            for &(i, n) in samples {
                *map.entry(pool[i as usize % pool.len()].to_owned()).or_insert(0) += n;
            }
        };
    bump(&mut p.stage_busy, &STAGES, &stages);
    bump(&mut p.op_execs, &OPS, &ops);
    bump(&mut p.unit_activations, &OPS, &units);
    bump(&mut p.hits, &PROBES, &hits);
    for (mem, exp, write, addrs) in heats {
        let name = MEMS[mem as usize % MEMS.len()].to_owned();
        let side = if write { &mut p.write_heat } else { &mut p.read_heat };
        let heat = side
            .entry(name)
            .or_insert_with(|| Heatmap { bucket_size: 1 << exp, counts: Vec::new() });
        for addr in addrs {
            heat.record(addr);
        }
    }
    p
}

fn merged(a: &ArchProfile, b: &ArchProfile) -> ArchProfile {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn merge_is_associative(
        a in profile_strategy(),
        b in profile_strategy(),
        c in profile_strategy(),
    ) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_commutative(a in profile_strategy(), b in profile_strategy()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn empty_is_identity(a in profile_strategy()) {
        prop_assert_eq!(merged(&a, &ArchProfile::default()), a.clone());
        prop_assert_eq!(merged(&ArchProfile::default(), &a), a);
    }

    #[test]
    fn merge_conserves_every_total(a in profile_strategy(), b in profile_strategy()) {
        let m = merged(&a, &b);
        prop_assert_eq!(m.cycles, a.cycles + b.cycles);
        prop_assert_eq!(m.probe_hits(), a.probe_hits() + b.probe_hits());
        let sum = |side: fn(&ArchProfile) -> &std::collections::BTreeMap<String, Heatmap>| {
            move |p: &ArchProfile| side(p).values().map(Heatmap::total).sum::<u64>()
        };
        let reads = sum(|p| &p.read_heat);
        prop_assert_eq!(reads(&m), reads(&a) + reads(&b));
        let writes = sum(|p| &p.write_heat);
        prop_assert_eq!(writes(&m), writes(&a) + writes(&b));
    }

    #[test]
    fn coarsening_never_loses_accesses(
        exp in 0u8..5,
        wider in 0u8..7,
        addrs in proptest::collection::vec(0u64..4096, 1..=32),
    ) {
        let mut heat = Heatmap { bucket_size: 1 << exp, counts: Vec::new() };
        for &a in &addrs {
            heat.record(a);
        }
        let total = heat.total();
        heat.coarsen_to(1 << (exp + wider));
        prop_assert_eq!(heat.total(), total);
        prop_assert_eq!(heat.bucket_size, 1u64 << (exp + wider));
        // Every address still lands in the bucket covering it.
        for &a in &addrs {
            let idx = (a / heat.bucket_size) as usize;
            prop_assert!(heat.counts[idx] > 0, "addr {} lost from bucket {}", a, idx);
        }
    }

    #[test]
    fn bucket_edges_split_adjacent_addresses(bucket_exp in 1u8..6, bucket in 0u64..16) {
        let size = 1u64 << bucket_exp;
        let mut heat = Heatmap { bucket_size: size, counts: Vec::new() };
        let last_inside = bucket * size + (size - 1);
        heat.record(bucket * size);
        heat.record(last_inside);
        heat.record(last_inside + 1); // first address of the next bucket
        prop_assert_eq!(heat.counts[bucket as usize], 2);
        prop_assert_eq!(heat.counts[bucket as usize + 1], 1);
    }
}

//! Bucketed address heatmaps with an exact, order-independent merge.

/// A histogram of accesses over a resource's flat element indices.
///
/// Bucket sizes are always powers of two, so coarsening is *exact*:
/// bucket boundaries of a wider heatmap always align with boundaries of
/// a narrower one, and [`Heatmap::merge`] (coarsen both sides to the
/// larger bucket size, then add counts) is associative and commutative
/// with the empty heatmap as identity — the property that lets
/// per-run profiles fold into fleet aggregates in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heatmap {
    /// Elements per bucket (a power of two).
    pub bucket_size: u64,
    /// Access counts; bucket `b` covers flat indices
    /// `[b * bucket_size, (b + 1) * bucket_size)`. Never ends with a
    /// zero bucket (trailing zeros are trimmed), so equal recordings
    /// compare equal regardless of growth history.
    pub counts: Vec<u64>,
}

impl Default for Heatmap {
    fn default() -> Heatmap {
        Heatmap { bucket_size: 1, counts: Vec::new() }
    }
}

impl Heatmap {
    /// An empty heatmap with single-element buckets (the merge identity).
    #[must_use]
    pub fn new() -> Heatmap {
        Heatmap::default()
    }

    /// An empty heatmap whose bucket size is chosen so a resource of
    /// `elements` flat cells spans at most `max_buckets` buckets.
    ///
    /// The chosen size is the smallest power of two `>=
    /// ceil(elements / max_buckets)`, so small register files get
    /// per-cell resolution while large memories stay bounded.
    #[must_use]
    pub fn for_elements(elements: u64, max_buckets: u64) -> Heatmap {
        let per = elements.div_ceil(max_buckets.max(1)).max(1);
        Heatmap { bucket_size: per.next_power_of_two(), counts: Vec::new() }
    }

    /// Records one access to flat index `addr`.
    pub fn record(&mut self, addr: u64) {
        let idx = (addr / self.bucket_size) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Total accesses recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Re-buckets in place to a coarser power-of-two `bucket_size`.
    /// No-op when `bucket_size <= self.bucket_size`.
    pub fn coarsen_to(&mut self, bucket_size: u64) {
        debug_assert!(bucket_size.is_power_of_two(), "bucket sizes are powers of two");
        if bucket_size <= self.bucket_size {
            return;
        }
        let factor = (bucket_size / self.bucket_size) as usize;
        let mut merged = vec![0u64; self.counts.len().div_ceil(factor)];
        for (i, c) in self.counts.iter().enumerate() {
            merged[i / factor] += c;
        }
        self.bucket_size = bucket_size;
        self.counts = merged;
        self.trim();
    }

    /// Adds another heatmap's counts into this one, coarsening both
    /// sides to the larger bucket size first. Associative, commutative,
    /// with [`Heatmap::default`] as identity.
    pub fn merge(&mut self, other: &Heatmap) {
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            // An empty heatmap is the identity regardless of its own
            // bucket size — adopt the other side wholesale so merge
            // stays commutative.
            self.bucket_size = other.bucket_size;
            self.counts = other.counts.clone();
            return;
        }
        let target = self.bucket_size.max(other.bucket_size);
        self.coarsen_to(target);
        let factor = (target / other.bucket_size) as usize;
        let need = other.counts.len().div_ceil(factor);
        if need > self.counts.len() {
            self.counts.resize(need, 0);
        }
        for (i, c) in other.counts.iter().enumerate() {
            self.counts[i / factor] += c;
        }
        self.trim();
    }

    fn trim(&mut self) {
        while self.counts.last() == Some(&0) {
            self.counts.pop();
        }
    }

    /// A one-line ASCII rendering: one density character per bucket
    /// (space = zero, `.` through `@` scaled to the hottest bucket).
    #[must_use]
    pub fn sparkline(&self) -> String {
        const RAMP: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return String::new();
        }
        self.counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    ' '
                } else {
                    // Map 1..=max onto the ramp, hottest bucket always '@'.
                    let slot = ((c as u128 * RAMP.len() as u128 - 1) / max as u128) as usize;
                    RAMP[slot.min(RAMP.len() - 1)]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_size_scales_with_resource_size() {
        assert_eq!(Heatmap::for_elements(16, 64).bucket_size, 1);
        assert_eq!(Heatmap::for_elements(64, 64).bucket_size, 1);
        assert_eq!(Heatmap::for_elements(65, 64).bucket_size, 2);
        assert_eq!(Heatmap::for_elements(4096, 64).bucket_size, 64);
        assert_eq!(Heatmap::for_elements(0, 64).bucket_size, 1);
        assert_eq!(Heatmap::for_elements(10, 0).bucket_size, 16);
    }

    #[test]
    fn records_land_on_bucket_boundaries() {
        let mut h = Heatmap::for_elements(256, 64); // bucket_size 4
        assert_eq!(h.bucket_size, 4);
        h.record(0);
        h.record(3); // last index of bucket 0
        h.record(4); // first index of bucket 1
        h.record(255); // last bucket
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[63], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn coarsen_preserves_totals_and_alignment() {
        let mut h = Heatmap::new();
        for a in [0, 1, 2, 3, 7, 8, 15] {
            h.record(a);
        }
        let total = h.total();
        h.coarsen_to(8);
        assert_eq!(h.bucket_size, 8);
        assert_eq!(h.total(), total);
        assert_eq!(h.counts, vec![5, 2]); // 0..8 got 0,1,2,3,7; 8..16 got 8,15
    }

    #[test]
    fn merge_coarsens_to_the_wider_side() {
        let mut a = Heatmap { bucket_size: 2, counts: vec![1, 1] };
        let b = Heatmap { bucket_size: 8, counts: vec![0, 5] };
        a.merge(&b);
        assert_eq!(a.bucket_size, 8);
        assert_eq!(a.counts, vec![2, 5]);

        // And the mirror image gives the same result.
        let mut b2 = Heatmap { bucket_size: 8, counts: vec![0, 5] };
        b2.merge(&Heatmap { bucket_size: 2, counts: vec![1, 1] });
        assert_eq!(a, b2);
    }

    #[test]
    fn empty_is_the_merge_identity_in_both_directions() {
        let mut h = Heatmap { bucket_size: 4, counts: vec![3, 0, 9] };
        let orig = h.clone();
        h.merge(&Heatmap::default());
        assert_eq!(h, orig);
        let mut e = Heatmap::default();
        e.merge(&orig);
        assert_eq!(e, orig);
    }

    #[test]
    fn trailing_zeros_never_survive() {
        let mut a = Heatmap { bucket_size: 1, counts: vec![0, 1, 1, 0] };
        a.trim();
        assert_eq!(a.counts.len(), 3);
        a.coarsen_to(4);
        assert_eq!(a.counts, vec![2]);
    }

    #[test]
    fn sparkline_marks_hot_and_cold_buckets() {
        let mut h = Heatmap::new();
        for _ in 0..100 {
            h.record(0);
        }
        h.record(2);
        let line = h.sparkline();
        assert_eq!(line.chars().next(), Some('@'));
        assert_eq!(line.chars().nth(1), Some(' '));
        assert_eq!(line.chars().nth(2), Some('.'));
        assert_eq!(Heatmap::new().sparkline(), "");
    }
}

//! The per-simulator probe engine the backends drive.

use lisa_core::model::{OpId, PipelineId};
use lisa_trace::{NameTable, TraceEvent};

use crate::arch::ArchProfile;
use crate::heatmap::Heatmap;
use crate::spec::ProbeSet;

/// Cap on heatmap buckets per memory resource; bucket sizes scale with
/// the resource so small register files keep per-cell resolution.
const MAX_HEAT_BUCKETS: u64 = 64;

/// Per-simulator probe state: the compiled [`ProbeSet`], id-indexed
/// architecture counters (folded to names only when the profile is
/// taken), per-probe hit counts, and the latched breakpoint stop.
///
/// The runtime consumes the simulator's own trace events — the same
/// stream the lockstep oracle already proves mode-independent — so
/// probe semantics are identical across backends *by construction*.
/// Reads are the one thing the event stream lacks; backends feed them
/// through [`ProbeRuntime::observe_read`].
#[derive(Debug, Clone)]
pub struct ProbeRuntime {
    set: ProbeSet,
    arch: bool,
    /// Behavior executions by [`OpId`].
    op_execs: Vec<u64>,
    /// Activations by target [`OpId`].
    unit_acts: Vec<u64>,
    /// Stage occupancy, flattened over all pipelines.
    stage_busy: Vec<u64>,
    /// First `stage_busy` slot of each pipeline.
    pipe_base: Vec<usize>,
    /// Read/write heatmaps by heat slot.
    read_heat: Vec<Heatmap>,
    write_heat: Vec<Heatmap>,
    /// Hits by probe id.
    hit_counts: Vec<u64>,
    /// Latched breakpoint: `(probe id, pc)`.
    stop: Option<(u16, i64)>,
}

impl ProbeRuntime {
    /// Builds the runtime for a compiled probe set. `names` must be the
    /// name table of the model the set was compiled against (it sizes
    /// the id-indexed counters).
    #[must_use]
    pub fn new(set: ProbeSet, names: &NameTable) -> ProbeRuntime {
        let mut pipe_base = Vec::with_capacity(names.pipelines.len());
        let mut stages = 0usize;
        for (_, stage_names) in &names.pipelines {
            pipe_base.push(stages);
            stages += stage_names.len();
        }
        let seeded: Vec<Heatmap> = set
            .heat
            .iter()
            .map(|&(_, elements)| Heatmap::for_elements(elements, MAX_HEAT_BUCKETS))
            .collect();
        ProbeRuntime {
            arch: false,
            op_execs: vec![0; names.ops.len()],
            unit_acts: vec![0; names.ops.len()],
            stage_busy: vec![0; stages],
            pipe_base,
            read_heat: seeded.clone(),
            write_heat: seeded,
            hit_counts: vec![0; set.len()],
            stop: None,
            set,
        }
    }

    /// The compiled probe set (for labels and hit reporting).
    #[must_use]
    pub fn probe_set(&self) -> &ProbeSet {
        &self.set
    }

    /// Turns architecture profiling (utilization counters + heatmaps)
    /// on. Watchpoints and breakpoints work either way.
    pub fn enable_arch(&mut self) {
        self.arch = true;
    }

    /// Whether architecture profiling is on.
    #[must_use]
    pub fn arch_enabled(&self) -> bool {
        self.arch
    }

    /// Consumes one simulator trace event: accumulates utilization
    /// (when profiling is on), matches watchpoints and PC probes, and
    /// calls `emit` once per matched probe with the `ProbeHit` event to
    /// append to the trace stream. Breakpoint matches additionally
    /// latch a stop (see [`ProbeRuntime::take_stop`]).
    #[inline]
    pub fn observe(&mut self, event: &TraceEvent, mut emit: impl FnMut(TraceEvent)) {
        match *event {
            TraceEvent::MemoryAccess { cycle, resource, addr, value } => {
                if self.arch {
                    if let Some(&Some(slot)) = self.set.heat_slot.get(resource.0) {
                        self.write_heat[usize::from(slot)].record(addr);
                    }
                }
                self.match_write(cycle, resource, addr, value, &mut emit);
            }
            TraceEvent::RegisterWrite { cycle, resource, addr, value } => {
                self.match_write(cycle, resource, addr, value, &mut emit);
            }
            TraceEvent::Exec { op, stage, .. } if self.arch => {
                if let Some(slot) = self.op_execs.get_mut(op.0) {
                    *slot += 1;
                }
                if let Some((pipe, s)) = stage {
                    if let Some(&base) = self.pipe_base.get(pipe.0) {
                        if let Some(slot) = self.stage_busy.get_mut(base + usize::from(s)) {
                            *slot += 1;
                        }
                    }
                }
            }
            TraceEvent::Activation { to, .. } if self.arch => {
                if let Some(slot) = self.unit_acts.get_mut(to.0) {
                    *slot += 1;
                }
            }
            _ => {}
        }
    }

    fn match_write(
        &mut self,
        cycle: u64,
        resource: lisa_core::model::ResourceId,
        addr: u64,
        value: i64,
        emit: &mut impl FnMut(TraceEvent),
    ) {
        if let Some(watches) = self.set.watches.get(resource.0) {
            for &(lo, hi, probe) in watches {
                if addr >= lo && addr < hi {
                    self.hit_counts[usize::from(probe)] += 1;
                    emit(TraceEvent::ProbeHit { cycle, probe, resource, addr, value });
                }
            }
        }
        // PC breakpoints and tracepoints ride the same write funnel:
        // in every backend a control-flow change is an ordinary write
        // to the PROGRAM_COUNTER resource.
        if self.set.pc_res == Some(resource.0) {
            for &(pc, probe) in &self.set.traces {
                if pc == value {
                    self.hit_counts[usize::from(probe)] += 1;
                    emit(TraceEvent::ProbeHit { cycle, probe, resource, addr, value });
                }
            }
            for &(pc, probe) in &self.set.breaks {
                if pc == value {
                    self.hit_counts[usize::from(probe)] += 1;
                    emit(TraceEvent::ProbeHit { cycle, probe, resource, addr, value });
                    if self.stop.is_none() {
                        self.stop = Some((probe, pc));
                    }
                }
            }
        }
    }

    /// Records a behavior-level read of flat element `addr` of resource
    /// index `res` (memory-class resources feed the read heatmap; all
    /// others are ignored). No-op unless profiling is on.
    #[inline]
    pub fn observe_read(&mut self, res: usize, addr: u64) {
        if !self.arch {
            return;
        }
        if let Some(&Some(slot)) = self.set.heat_slot.get(res) {
            self.read_heat[usize::from(slot)].record(addr);
        }
    }

    /// Takes the latched breakpoint stop, if any: `(probe id, pc)`.
    /// Clears it, so a resumed run does not immediately re-stop.
    pub fn take_stop(&mut self) -> Option<(u16, i64)> {
        self.stop.take()
    }

    /// Hits recorded for one probe id.
    #[must_use]
    pub fn hit_count(&self, probe: u16) -> u64 {
        self.hit_counts.get(usize::from(probe)).copied().unwrap_or(0)
    }

    /// Total hits across all probes.
    #[must_use]
    pub fn total_hits(&self) -> u64 {
        self.hit_counts.iter().sum()
    }

    /// Folds the id-indexed counters into a named, mergeable
    /// [`ArchProfile`] covering `cycles` control steps. Non-destructive.
    #[must_use]
    pub fn arch_profile(&self, names: &NameTable, cycles: u64) -> ArchProfile {
        let mut profile = ArchProfile { cycles, ..ArchProfile::default() };
        for (i, &n) in self.op_execs.iter().enumerate() {
            if n > 0 {
                profile.op_execs.insert(names.op(OpId(i)).to_owned(), n);
            }
        }
        for (i, &n) in self.unit_acts.iter().enumerate() {
            if n > 0 {
                profile.unit_activations.insert(names.op(OpId(i)).to_owned(), n);
            }
        }
        for (p, &base) in self.pipe_base.iter().enumerate() {
            let depth = names.pipelines.get(p).map_or(0, |(_, s)| s.len());
            for s in 0..depth {
                let busy = self.stage_busy[base + s];
                if busy > 0 {
                    profile.stage_busy.insert(names.stage_key(PipelineId(p), s), busy);
                }
            }
        }
        for (slot, (name, _)) in self.set.heat.iter().enumerate() {
            if !self.read_heat[slot].is_empty() {
                profile.read_heat.insert(name.clone(), self.read_heat[slot].clone());
            }
            if !self.write_heat[slot].is_empty() {
                profile.write_heat.insert(name.clone(), self.write_heat[slot].clone());
            }
        }
        for (i, &n) in self.hit_counts.iter().enumerate() {
            if n > 0 {
                profile.hits.insert(self.set.label(i as u16).to_owned(), n);
            }
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use lisa_core::model::{Model, ResourceId};

    use super::*;
    use crate::spec::ProbeSpec;

    fn model() -> Model {
        Model::from_source(
            r"
            RESOURCE {
                PROGRAM_COUNTER int pc;
                REGISTER int acc;
                DATA_MEMORY int dmem[256];
                PIPELINE pipe = { FE; EX };
            }
            OPERATION main { BEHAVIOR { pc = pc + 1; } }
            ",
        )
        .expect("model builds")
    }

    fn runtime(spec: &str) -> (ProbeRuntime, NameTable, Model) {
        let model = model();
        let names = NameTable::of(&model);
        let set = ProbeSpec::parse(spec).unwrap().compile(&model).unwrap();
        (ProbeRuntime::new(set, &names), names, model)
    }

    fn collect(rt: &mut ProbeRuntime, event: TraceEvent) -> Vec<TraceEvent> {
        let mut hits = Vec::new();
        rt.observe(&event, |h| hits.push(h));
        hits
    }

    #[test]
    fn watch_hits_only_inside_the_range() {
        let (mut rt, _, model) = runtime("watch dmem[8..16]");
        let dmem = model.resource_by_name("dmem").unwrap().id;
        let hit = |addr| TraceEvent::MemoryAccess { cycle: 1, resource: dmem, addr, value: 7 };
        assert!(collect(&mut rt, hit(7)).is_empty());
        assert_eq!(
            collect(&mut rt, hit(8)),
            vec![TraceEvent::ProbeHit { cycle: 1, probe: 0, resource: dmem, addr: 8, value: 7 }]
        );
        assert!(collect(&mut rt, hit(16)).is_empty());
        assert_eq!(rt.hit_count(0), 1);
        assert_eq!(rt.total_hits(), 1);
        assert!(rt.take_stop().is_none());
    }

    #[test]
    fn overlapping_watches_each_hit() {
        let (mut rt, _, model) = runtime("watch dmem[0..16]; watch dmem[8..32]");
        let dmem = model.resource_by_name("dmem").unwrap().id;
        let hits = collect(
            &mut rt,
            TraceEvent::MemoryAccess { cycle: 2, resource: dmem, addr: 9, value: 1 },
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(rt.hit_count(0), 1);
        assert_eq!(rt.hit_count(1), 1);
    }

    #[test]
    fn breakpoints_latch_a_stop_on_pc_writes() {
        let (mut rt, _, model) = runtime("break 5; trace 3");
        let pc = model.resource_by_name("pc").unwrap().id;
        let write = |v| TraceEvent::RegisterWrite { cycle: 1, resource: pc, addr: 0, value: v };
        assert!(collect(&mut rt, write(4)).is_empty());
        assert_eq!(collect(&mut rt, write(3)).len(), 1); // tracepoint: hit, no stop
        assert!(rt.take_stop().is_none());
        assert_eq!(collect(&mut rt, write(5)).len(), 1);
        assert_eq!(rt.take_stop(), Some((0, 5)));
        assert!(rt.take_stop().is_none(), "stop is cleared once taken");
        // Writes to other registers never match PC probes.
        let acc = model.resource_by_name("acc").unwrap().id;
        assert!(collect(
            &mut rt,
            TraceEvent::RegisterWrite { cycle: 2, resource: acc, addr: 0, value: 5 }
        )
        .is_empty());
    }

    #[test]
    fn arch_profile_folds_ids_back_to_names() {
        let (mut rt, names, model) = runtime("watch dmem[0..4]");
        rt.enable_arch();
        assert!(rt.arch_enabled());
        let dmem = model.resource_by_name("dmem").unwrap().id;
        let main = model.operation_by_name("main").unwrap().id;
        rt.observe(
            &TraceEvent::Exec { cycle: 0, op: main, stage: Some((PipelineId(0), 1)), pc: 0 },
            |_| {},
        );
        rt.observe(&TraceEvent::Activation { cycle: 0, from: main, to: main, delay: 1 }, |_| {});
        let mut hits = Vec::new();
        rt.observe(
            &TraceEvent::MemoryAccess { cycle: 1, resource: dmem, addr: 2, value: 9 },
            |h| hits.push(h),
        );
        assert_eq!(hits.len(), 1);
        rt.observe_read(dmem.0, 200);
        rt.observe_read(dmem.0, 201);
        let profile = rt.arch_profile(&names, 2);
        assert_eq!(profile.cycles, 2);
        assert_eq!(profile.op_execs["main"], 1);
        assert_eq!(profile.stage_busy["pipe.EX"], 1);
        assert_eq!(profile.unit_activations["main"], 1);
        assert_eq!(profile.write_heat["dmem"].total(), 1);
        assert_eq!(profile.read_heat["dmem"].total(), 2);
        assert_eq!(profile.hits["watch dmem[0..4]"], 1);
        assert_eq!(profile.probe_hits(), 1);
    }

    #[test]
    fn arch_off_skips_utilization_but_not_probes() {
        let (mut rt, names, model) = runtime("watch dmem");
        let dmem = model.resource_by_name("dmem").unwrap().id;
        rt.observe_read(dmem.0, 5);
        let hits = collect(
            &mut rt,
            TraceEvent::MemoryAccess { cycle: 0, resource: dmem, addr: 1, value: 2 },
        );
        assert_eq!(hits.len(), 1, "watchpoints fire with profiling off");
        let profile = rt.arch_profile(&names, 1);
        assert!(profile.read_heat.is_empty());
        assert!(profile.write_heat.is_empty());
        assert_eq!(profile.hits["watch dmem"], 1);
    }

    #[test]
    fn reads_of_non_memory_resources_are_ignored() {
        let (mut rt, names, model) = runtime("");
        rt.enable_arch();
        let acc = model.resource_by_name("acc").unwrap().id;
        rt.observe_read(acc.0, 0);
        rt.observe_read(ResourceId(99).0, 0);
        assert!(rt.arch_profile(&names, 1).read_heat.is_empty());
    }
}

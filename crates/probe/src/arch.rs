//! The mergeable architecture profile.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::heatmap::Heatmap;

/// Aggregated architectural activity over some number of control steps:
/// per-pipeline-stage occupancy, per-operation execution and activation
/// (functional-unit utilization) counts, bucketed memory read/write
/// heatmaps, and per-probe hit counts.
///
/// Like `lisa_trace::Profile`, the profile is an *aggregate*: merging
/// profiles from different runs (or service requests) is associative
/// and commutative with [`ArchProfile::default`] as identity, so
/// per-run profiles fold into fleet-level views in any order. All maps
/// are ordered, so two profiles of identical activity compare equal —
/// the property the conformance harness uses to assert backend
/// independence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArchProfile {
    /// Control steps covered.
    pub cycles: u64,
    /// Operation executions per `"pipeline.stage"` key.
    pub stage_busy: BTreeMap<String, u64>,
    /// Behavior executions per operation.
    pub op_execs: BTreeMap<String, u64>,
    /// Activations scheduled per *target* operation — in a LISA model
    /// the activated operation stands for the functional unit it
    /// occupies, so this is unit utilization.
    pub unit_activations: BTreeMap<String, u64>,
    /// Read heatmap per memory-class resource.
    pub read_heat: BTreeMap<String, Heatmap>,
    /// Write heatmap per memory-class resource.
    pub write_heat: BTreeMap<String, Heatmap>,
    /// Hits per probe label.
    pub hits: BTreeMap<String, u64>,
}

fn merge_counts(into: &mut BTreeMap<String, u64>, from: &BTreeMap<String, u64>) {
    for (key, n) in from {
        match into.get_mut(key) {
            Some(slot) => *slot += n,
            None => {
                into.insert(key.clone(), *n);
            }
        }
    }
}

impl ArchProfile {
    /// An empty profile (the merge identity).
    #[must_use]
    pub fn new() -> ArchProfile {
        ArchProfile::default()
    }

    /// Total probe hits across all probes.
    #[must_use]
    pub fn probe_hits(&self) -> u64 {
        self.hits.values().sum()
    }

    /// Whether the profile recorded nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == ArchProfile::default()
    }

    /// Adds another profile's counts into this one. Associative and
    /// commutative; [`ArchProfile::default`] is the identity.
    pub fn merge(&mut self, other: &ArchProfile) {
        self.cycles += other.cycles;
        merge_counts(&mut self.stage_busy, &other.stage_busy);
        merge_counts(&mut self.op_execs, &other.op_execs);
        merge_counts(&mut self.unit_activations, &other.unit_activations);
        merge_counts(&mut self.hits, &other.hits);
        for (mem, heat) in &other.read_heat {
            self.read_heat.entry(mem.clone()).or_default().merge(heat);
        }
        for (mem, heat) in &other.write_heat {
            self.write_heat.entry(mem.clone()).or_default().merge(heat);
        }
    }

    /// Human-readable report: utilization tables with occupancy
    /// percentages and one sparkline per memory heatmap.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "architecture profile over {} control steps", self.cycles);
        let percent = |n: u64| {
            if self.cycles == 0 {
                0.0
            } else {
                n as f64 * 100.0 / self.cycles as f64
            }
        };
        if !self.stage_busy.is_empty() {
            let _ = writeln!(out, "pipeline stage occupancy:");
            for (stage, busy) in &self.stage_busy {
                let _ = writeln!(out, "  {stage:<18} {busy:>10}  ({:.1}%)", percent(*busy));
            }
        }
        if !self.op_execs.is_empty() {
            let _ = writeln!(out, "operation executions:");
            let mut ops: Vec<_> = self.op_execs.iter().collect();
            ops.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
            for (op, execs) in ops {
                let _ = writeln!(out, "  {op:<18} {execs:>10}");
            }
        }
        if !self.unit_activations.is_empty() {
            let _ = writeln!(out, "unit activations:");
            let mut units: Vec<_> = self.unit_activations.iter().collect();
            units.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
            for (unit, n) in units {
                let _ = writeln!(out, "  {unit:<18} {n:>10}");
            }
        }
        for (title, heat) in
            [("memory reads:", &self.read_heat), ("memory writes:", &self.write_heat)]
        {
            if heat.is_empty() {
                continue;
            }
            let _ = writeln!(out, "{title}");
            for (mem, map) in heat {
                let _ = writeln!(
                    out,
                    "  {mem:<18} {:>10}  |{}|  ({} cells/bucket)",
                    map.total(),
                    map.sparkline(),
                    map.bucket_size
                );
            }
        }
        if !self.hits.is_empty() {
            let _ = writeln!(out, "probe hits ({} total):", self.probe_hits());
            for (label, n) in &self.hits {
                let _ = writeln!(out, "  {label:<24} {n:>10}");
            }
        }
        out
    }

    /// The profile as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(s, "{{\"cycles\":{},\"probe_hits\":{}", self.cycles, self.probe_hits());
        for (key, map) in [
            ("stage_busy", &self.stage_busy),
            ("op_execs", &self.op_execs),
            ("unit_activations", &self.unit_activations),
            ("hits", &self.hits),
        ] {
            let _ = write!(s, ",\"{key}\":{{");
            for (i, (name, n)) in map.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                json_string(&mut s, name);
                let _ = write!(s, ":{n}");
            }
            s.push('}');
        }
        for (key, heat) in [("read_heat", &self.read_heat), ("write_heat", &self.write_heat)] {
            let _ = write!(s, ",\"{key}\":{{");
            for (i, (mem, map)) in heat.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                json_string(&mut s, mem);
                let _ = write!(
                    s,
                    ":{{\"bucket_size\":{},\"total\":{},\"counts\":[",
                    map.bucket_size,
                    map.total()
                );
                for (j, c) in map.counts.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{c}");
                }
                s.push_str("]}");
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

/// Appends `text` as a JSON string literal with the escapes JSON
/// requires (resource and probe labels may contain anything).
fn json_string(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ArchProfile {
        let mut p = ArchProfile::new();
        p.cycles = 100;
        p.stage_busy.insert("pipe.EX".into(), 40);
        p.op_execs.insert("add".into(), 40);
        p.unit_activations.insert("mac".into(), 12);
        p.hits.insert("watch dmem".into(), 3);
        let mut heat = Heatmap::for_elements(256, 64);
        heat.record(0);
        heat.record(255);
        p.write_heat.insert("dmem".into(), heat);
        p
    }

    #[test]
    fn merge_adds_counts_and_heatmaps() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.cycles, 200);
        assert_eq!(a.stage_busy["pipe.EX"], 80);
        assert_eq!(a.op_execs["add"], 80);
        assert_eq!(a.unit_activations["mac"], 24);
        assert_eq!(a.hits["watch dmem"], 6);
        assert_eq!(a.probe_hits(), 6);
        assert_eq!(a.write_heat["dmem"].total(), 4);
    }

    #[test]
    fn default_is_the_merge_identity() {
        let mut left = sample();
        left.merge(&ArchProfile::default());
        assert_eq!(left, sample());
        let mut right = ArchProfile::default();
        right.merge(&sample());
        assert_eq!(right, sample());
        assert!(ArchProfile::default().is_empty());
        assert!(!sample().is_empty());
    }

    #[test]
    fn report_covers_every_section() {
        let text = sample().report();
        assert!(text.contains("100 control steps"));
        assert!(text.contains("pipe.EX"));
        assert!(text.contains("(40.0%)"));
        assert!(text.contains("add"));
        assert!(text.contains("mac"));
        assert!(text.contains("dmem"));
        assert!(text.contains("watch dmem"));
        assert!(text.contains("cells/bucket"));
    }

    #[test]
    fn json_is_balanced_and_carries_heat_buckets() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cycles\":100"));
        assert!(json.contains("\"probe_hits\":3"));
        assert!(json.contains("\"pipe.EX\":40"));
        assert!(json.contains("\"bucket_size\":4"));
        assert!(json.contains("\"watch dmem\":3"));
        let empty = ArchProfile::default().to_json();
        assert!(empty.contains("\"cycles\":0"));
        assert!(empty.contains("\"read_heat\":{}"));
    }
}

//! The probe-spec language and its compilation against a model.

use lisa_core::ast::ResourceClass;
use lisa_core::model::Model;

/// A probe-spec failure: parse errors name the offending clause,
/// compile errors name the model object that did not resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeError {
    /// The spec text did not parse.
    Parse(String),
    /// The spec parsed but does not fit the model.
    Compile(String),
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::Parse(msg) => write!(f, "probe parse error: {msg}"),
            ProbeError::Compile(msg) => write!(f, "probe compile error: {msg}"),
        }
    }
}

impl std::error::Error for ProbeError {}

/// One parsed probe clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Probe {
    /// `watch NAME`, `watch NAME[I]`, `watch NAME[LO..HI]` — hit on
    /// every write to the cell / half-open flat index range.
    Watch {
        /// Resource name.
        resource: String,
        /// Half-open flat index range (`None` = the whole resource).
        range: Option<(u64, u64)>,
    },
    /// `reg NAME`, `reg NAME[I]` — register trace probe: hit on every
    /// write to the (register-class) resource.
    Reg {
        /// Resource name.
        resource: String,
        /// Single flat index (`None` = the whole resource).
        index: Option<u64>,
    },
    /// `break PC` — stop `run_until` after the step that writes the
    /// program counter to `PC`.
    Break {
        /// Program-counter value to stop at.
        pc: i64,
    },
    /// `trace PC` — hit (without stopping) whenever the program counter
    /// is written to `PC`.
    Trace {
        /// Program-counter value to record.
        pc: i64,
    },
}

/// A parsed probe specification: `;`-separated clauses.
///
/// ```
/// use lisa_probe::ProbeSpec;
/// let spec = ProbeSpec::parse("watch dmem[0..16]; break 0x12; reg acc").unwrap();
/// assert_eq!(spec.probes.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProbeSpec {
    /// The clauses, in spec order (probe ids follow this order).
    pub probes: Vec<Probe>,
}

fn parse_int(text: &str) -> Result<i64, ProbeError> {
    let text = text.trim();
    let (negative, digits) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value = match digits.strip_prefix("0x").or_else(|| digits.strip_prefix("0X")) {
        Some(hex) => i64::from_str_radix(hex, 16),
        None => digits.parse(),
    }
    .map_err(|_| ProbeError::Parse(format!("bad integer `{text}`")))?;
    Ok(if negative { -value } else { value })
}

fn parse_index(text: &str) -> Result<u64, ProbeError> {
    u64::try_from(parse_int(text)?)
        .map_err(|_| ProbeError::Parse(format!("negative index `{text}`")))
}

/// A parsed probe subject: the resource name plus an optional single
/// index or `(lo, Some(hi))` range.
type Subject<'a> = (&'a str, Option<(u64, Option<u64>)>);

/// Splits `NAME`, `NAME[I]` or `NAME[LO..HI]`.
fn parse_subject(text: &str) -> Result<Subject<'_>, ProbeError> {
    let text = text.trim();
    let Some(open) = text.find('[') else {
        if text.is_empty() {
            return Err(ProbeError::Parse("missing resource name".into()));
        }
        return Ok((text, None));
    };
    let name = text[..open].trim();
    let rest = text[open + 1..]
        .strip_suffix(']')
        .ok_or_else(|| ProbeError::Parse(format!("missing `]` in `{text}`")))?;
    if name.is_empty() {
        return Err(ProbeError::Parse(format!("missing resource name in `{text}`")));
    }
    match rest.split_once("..") {
        Some((lo, hi)) => Ok((name, Some((parse_index(lo)?, Some(parse_index(hi)?))))),
        None => Ok((name, Some((parse_index(rest)?, None)))),
    }
}

impl ProbeSpec {
    /// Parses a `;`-separated probe spec. Empty clauses are skipped, so
    /// trailing separators are fine; an empty string is an empty spec.
    ///
    /// # Errors
    ///
    /// [`ProbeError::Parse`] naming the first malformed clause.
    pub fn parse(text: &str) -> Result<ProbeSpec, ProbeError> {
        let mut probes = Vec::new();
        for clause in text.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (keyword, rest) = clause.split_once(char::is_whitespace).unwrap_or((clause, ""));
            let rest = rest.trim();
            let probe = match keyword {
                "watch" => {
                    let (name, idx) = parse_subject(rest)?;
                    let range = match idx {
                        None => None,
                        Some((lo, Some(hi))) => Some((lo, hi)),
                        Some((i, None)) => Some((i, i + 1)),
                    };
                    Probe::Watch { resource: name.to_owned(), range }
                }
                "reg" => {
                    let (name, idx) = parse_subject(rest)?;
                    let index = match idx {
                        None => None,
                        Some((i, None)) => Some(i),
                        Some(_) => {
                            return Err(ProbeError::Parse(format!(
                                "`reg` takes a single index, not a range: `{clause}`"
                            )))
                        }
                    };
                    Probe::Reg { resource: name.to_owned(), index }
                }
                "break" => Probe::Break { pc: parse_int(rest)? },
                "trace" => Probe::Trace { pc: parse_int(rest)? },
                other => {
                    return Err(ProbeError::Parse(format!(
                        "unknown probe kind `{other}` (expected watch|reg|break|trace)"
                    )))
                }
            };
            probes.push(probe);
        }
        Ok(ProbeSpec { probes })
    }

    /// Compiles the spec against a model: resource names become flat
    /// index tables, PC probes bind to the model's `PROGRAM_COUNTER`.
    ///
    /// # Errors
    ///
    /// [`ProbeError::Compile`] for unknown resources, out-of-range
    /// indices, or PC probes on a model without a program counter.
    pub fn compile(&self, model: &Model) -> Result<ProbeSet, ProbeError> {
        let mut set = ProbeSet::empty(model);
        for probe in &self.probes {
            if set.labels.len() > usize::from(u16::MAX) {
                return Err(ProbeError::Compile("more than 65536 probes".into()));
            }
            let id = set.labels.len() as u16;
            match probe {
                Probe::Watch { resource, range } => {
                    let res = model.resource_by_name(resource).ok_or_else(|| {
                        ProbeError::Compile(format!("unknown resource `{resource}`"))
                    })?;
                    let elements = res.element_count();
                    let (lo, hi) = range.unwrap_or((0, elements));
                    if lo >= hi || hi > elements {
                        return Err(ProbeError::Compile(format!(
                            "range [{lo}..{hi}) out of bounds for `{resource}` ({elements} elements)"
                        )));
                    }
                    set.watches[res.id.0].push((lo, hi, id));
                    set.labels.push(match range {
                        None => format!("watch {resource}"),
                        Some((lo, hi)) if hi - lo == 1 => format!("watch {resource}[{lo}]"),
                        Some((lo, hi)) => format!("watch {resource}[{lo}..{hi}]"),
                    });
                }
                Probe::Reg { resource, index } => {
                    let res = model.resource_by_name(resource).ok_or_else(|| {
                        ProbeError::Compile(format!("unknown resource `{resource}`"))
                    })?;
                    let elements = res.element_count();
                    let (lo, hi) = match index {
                        None => (0, elements),
                        Some(i) => (*i, i + 1),
                    };
                    if lo >= hi || hi > elements {
                        return Err(ProbeError::Compile(format!(
                            "index {lo} out of bounds for `{resource}` ({elements} elements)"
                        )));
                    }
                    set.watches[res.id.0].push((lo, hi, id));
                    set.labels.push(match index {
                        None => format!("reg {resource}"),
                        Some(i) => format!("reg {resource}[{i}]"),
                    });
                }
                Probe::Break { pc } => {
                    if set.pc_res.is_none() {
                        return Err(ProbeError::Compile(
                            "model declares no PROGRAM_COUNTER resource".into(),
                        ));
                    }
                    set.breaks.push((*pc, id));
                    set.labels.push(format!("break {pc}"));
                }
                Probe::Trace { pc } => {
                    if set.pc_res.is_none() {
                        return Err(ProbeError::Compile(
                            "model declares no PROGRAM_COUNTER resource".into(),
                        ));
                    }
                    set.traces.push((*pc, id));
                    set.labels.push(format!("trace {pc}"));
                }
            }
        }
        set.breaks.sort_unstable();
        set.traces.sort_unstable();
        Ok(set)
    }
}

/// A spec compiled against one model: watch tables indexed by resource
/// id, sorted PC breakpoint/tracepoint tables, and the memory-heatmap
/// layout. Everything the hot path touches is a pre-resolved index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeSet {
    /// Watch ranges per resource id: `(lo, hi, probe_id)`, half-open.
    pub(crate) watches: Vec<Vec<(u64, u64, u16)>>,
    /// Sorted `(pc, probe_id)` breakpoints.
    pub(crate) breaks: Vec<(i64, u16)>,
    /// Sorted `(pc, probe_id)` tracepoints.
    pub(crate) traces: Vec<(i64, u16)>,
    /// The model's `PROGRAM_COUNTER` resource index, if any.
    pub(crate) pc_res: Option<usize>,
    /// Per-resource heatmap slot (memory-class resources only).
    pub(crate) heat_slot: Vec<Option<u16>>,
    /// Heatmap slot layout: `(resource name, element count)`.
    pub(crate) heat: Vec<(String, u64)>,
    /// Human-readable label per probe id.
    pub(crate) labels: Vec<String>,
}

impl ProbeSet {
    /// A probe-free set for `model` — still carries the memory-heatmap
    /// layout, so architecture profiling works without any probes.
    #[must_use]
    pub fn empty(model: &Model) -> ProbeSet {
        let n = model.resources().len();
        let mut heat_slot = vec![None; n];
        let mut heat = Vec::new();
        let mut pc_res = None;
        for res in model.resources() {
            match res.class {
                ResourceClass::DataMemory | ResourceClass::ProgramMemory => {
                    heat_slot[res.id.0] = Some(heat.len() as u16);
                    heat.push((res.name.clone(), res.element_count()));
                }
                ResourceClass::ProgramCounter => {
                    pc_res.get_or_insert(res.id.0);
                }
                _ => {}
            }
        }
        ProbeSet {
            watches: vec![Vec::new(); n],
            breaks: Vec::new(),
            traces: Vec::new(),
            pc_res,
            heat_slot,
            heat,
            labels: Vec::new(),
        }
    }

    /// Number of compiled probes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set contains no probes (it may still carry the
    /// heatmap layout for profiling).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The human-readable label of a probe id (`"?"` when unknown).
    #[must_use]
    pub fn label(&self, id: u16) -> &str {
        self.labels.get(usize::from(id)).map_or("?", String::as_str)
    }

    /// All probe labels, in probe-id order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Model {
        Model::from_source(
            r"
            RESOURCE {
                PROGRAM_COUNTER int pc;
                REGISTER int acc;
                REGISTER int R[8];
                DATA_MEMORY int dmem[256];
                PROGRAM_MEMORY int pmem[64];
            }
            OPERATION main { BEHAVIOR { pc = pc + 1; } }
            ",
        )
        .expect("model builds")
    }

    #[test]
    fn parses_every_clause_kind() {
        let spec =
            ProbeSpec::parse(" watch dmem[0..16];break 0x12; trace -1 ; reg acc; watch R[3];")
                .unwrap();
        assert_eq!(spec.probes.len(), 5);
        assert_eq!(spec.probes[0], Probe::Watch { resource: "dmem".into(), range: Some((0, 16)) });
        assert_eq!(spec.probes[1], Probe::Break { pc: 0x12 });
        assert_eq!(spec.probes[2], Probe::Trace { pc: -1 });
        assert_eq!(spec.probes[3], Probe::Reg { resource: "acc".into(), index: None });
        assert_eq!(spec.probes[4], Probe::Watch { resource: "R".into(), range: Some((3, 4)) });
        assert!(ProbeSpec::parse("").unwrap().probes.is_empty());
    }

    #[test]
    fn parse_errors_name_the_clause() {
        for (text, needle) in [
            ("inspect R", "unknown probe kind"),
            ("watch R[1", "missing `]`"),
            ("watch [1]", "missing resource name"),
            ("watch", "missing resource name"),
            ("break 12z", "bad integer"),
            ("watch R[-1]", "negative index"),
            ("reg R[0..4]", "single index"),
        ] {
            let err = ProbeSpec::parse(text).unwrap_err();
            assert!(matches!(&err, ProbeError::Parse(m) if m.contains(needle)), "{text}: {err}");
        }
    }

    #[test]
    fn compiles_to_flat_tables() {
        let model = model();
        let set = ProbeSpec::parse("watch dmem[0..16]; break 3; trace 5; reg R[2]; watch acc")
            .unwrap()
            .compile(&model)
            .unwrap();
        assert_eq!(set.len(), 5);
        let dmem = model.resource_by_name("dmem").unwrap().id.0;
        assert_eq!(set.watches[dmem], vec![(0, 16, 0)]);
        assert_eq!(set.breaks, vec![(3, 1)]);
        assert_eq!(set.traces, vec![(5, 2)]);
        let r = model.resource_by_name("R").unwrap().id.0;
        assert_eq!(set.watches[r], vec![(2, 3, 3)]);
        assert_eq!(set.label(0), "watch dmem[0..16]");
        assert_eq!(set.label(3), "reg R[2]");
        assert_eq!(set.label(9), "?");
    }

    #[test]
    fn heatmap_layout_covers_memories_only() {
        let set = ProbeSet::empty(&model());
        assert_eq!(set.heat.len(), 2);
        assert_eq!(set.heat[0].0, "dmem");
        assert_eq!(set.heat[0].1, 256);
        assert_eq!(set.heat[1].0, "pmem");
        assert!(set.pc_res.is_some());
        assert!(set.is_empty());
    }

    #[test]
    fn compile_errors_are_specific() {
        let model = model();
        for (text, needle) in [
            ("watch nosuch", "unknown resource"),
            ("watch dmem[0..300]", "out of bounds"),
            ("watch dmem[5..5]", "out of bounds"),
            ("reg R[8]", "out of bounds"),
        ] {
            let err = ProbeSpec::parse(text).unwrap().compile(&model).unwrap_err();
            assert!(matches!(&err, ProbeError::Compile(m) if m.contains(needle)), "{text}: {err}");
        }
        let no_pc = Model::from_source(
            "RESOURCE { REGISTER int a; } OPERATION main { BEHAVIOR { a = a; } }",
        )
        .unwrap();
        let err = ProbeSpec::parse("break 0").unwrap().compile(&no_pc).unwrap_err();
        assert!(matches!(&err, ProbeError::Compile(m) if m.contains("PROGRAM_COUNTER")));
    }
}

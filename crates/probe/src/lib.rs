//! Architectural observability for LISA simulators.
//!
//! The paper's central claim is that one machine description generates
//! the *whole* development tool suite — not just a cycle-accurate
//! simulator but the debugger and profiler views a DSP developer needs
//! to see inside the pipeline. This crate is that fourth observability
//! layer (after trace events, metrics and spans): it observes the
//! **simulated architecture** rather than the simulator runtime.
//!
//! Three pieces:
//!
//! * [`ProbeSpec`] — a tiny debugger language (`watch MEM[0..64]`,
//!   `break 0x12`, `trace 7`, `reg ACC`) parsed from text and
//!   [compiled](ProbeSpec::compile) against a model into a [`ProbeSet`]
//!   of pre-resolved flat storage indices, so the hot loop never
//!   touches a name.
//! * [`ArchProfile`] — an always-mergeable aggregate of per-stage
//!   occupancy, per-operation activation utilization, and bucketed
//!   memory read/write [`Heatmap`]s. Like `lisa_trace::Profile`, merge
//!   is associative with the empty profile as identity, so per-run
//!   profiles fold into fleet- or service-level views in any order.
//! * [`ProbeRuntime`] — the per-simulator state the backends drive:
//!   it consumes the simulator's own trace events (so probe semantics
//!   are backend-independent by construction), emits
//!   `TraceEvent::ProbeHit` records for matched probes, latches
//!   breakpoint stops, and accumulates the profile.
//!
//! The conformance harness asserts that probe hit streams and
//! `ArchProfile` contents are byte-identical across the interpretive,
//! compiled and threaded micro-op backends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod heatmap;
mod runtime;
mod spec;

pub use arch::ArchProfile;
pub use heatmap::Heatmap;
pub use runtime::ProbeRuntime;
pub use spec::{Probe, ProbeError, ProbeSet, ProbeSpec};

use lisa_metrics::Registry;

/// Publishes a profile's utilization aggregates as gauges into a
/// metrics registry: `lisa_arch_stage_busy` (per stage),
/// `lisa_arch_op_execs` (per operation), `lisa_arch_unit_activations`
/// (per activation target), `lisa_arch_memory_reads` /
/// `lisa_arch_memory_writes` (per memory), and `lisa_arch_probe_hits`.
///
/// Values are cumulative counts from the (merged) profile; publishing
/// again overwrites with the latest aggregate.
pub fn publish_arch(registry: &Registry, profile: &ArchProfile) {
    registry
        .gauge("lisa_arch_cycles", "Control steps covered by the merged architecture profile", &[])
        .set(profile.cycles.min(i64::MAX as u64) as i64);
    registry
        .gauge("lisa_arch_probe_hits", "Probe hits recorded in the merged profile", &[])
        .set(profile.probe_hits().min(i64::MAX as u64) as i64);
    for (stage, busy) in &profile.stage_busy {
        registry
            .gauge(
                "lisa_arch_stage_busy",
                "Control steps in which the pipeline stage executed an operation",
                &[("stage", stage)],
            )
            .set((*busy).min(i64::MAX as u64) as i64);
    }
    for (op, execs) in &profile.op_execs {
        registry
            .gauge("lisa_arch_op_execs", "Behavior executions per operation", &[("op", op)])
            .set((*execs).min(i64::MAX as u64) as i64);
    }
    for (unit, n) in &profile.unit_activations {
        registry
            .gauge(
                "lisa_arch_unit_activations",
                "Activations scheduled per target operation (functional unit)",
                &[("unit", unit)],
            )
            .set((*n).min(i64::MAX as u64) as i64);
    }
    for (mem, heat) in &profile.read_heat {
        registry
            .gauge("lisa_arch_memory_reads", "Reads per memory resource", &[("memory", mem)])
            .set(heat.total().min(i64::MAX as u64) as i64);
    }
    for (mem, heat) in &profile.write_heat {
        registry
            .gauge("lisa_arch_memory_writes", "Writes per memory resource", &[("memory", mem)])
            .set(heat.total().min(i64::MAX as u64) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_exposes_utilization_gauges() {
        let mut p = ArchProfile::new();
        p.cycles = 10;
        p.stage_busy.insert("pipe.EX".into(), 7);
        p.op_execs.insert("add".into(), 3);
        p.unit_activations.insert("mac".into(), 2);
        let registry = Registry::new();
        publish_arch(&registry, &p);
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("lisa_arch_cycles 10"));
        assert!(text.contains("lisa_arch_stage_busy{stage=\"pipe.EX\"} 7"));
        assert!(text.contains("lisa_arch_op_execs{op=\"add\"} 3"));
        assert!(text.contains("lisa_arch_unit_activations{unit=\"mac\"} 2"));
    }
}

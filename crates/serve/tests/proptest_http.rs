//! Property tests for the HTTP layer and the JSON request bodies.
//!
//! Three invariants, per the parser's contract:
//!
//! 1. **No panic on byte soup** — `parse_request` over arbitrary bytes
//!    (and over HTTP-ish mutations) returns `Ok`/`Err`, never panics.
//! 2. **Serialize→parse round-trip** — any valid [`Request`] survives
//!    `to_bytes` → `parse_request` intact, consuming every byte.
//! 3. **JSON bodies round-trip** — generated API request values survive
//!    `to_json` → `from_json`.

use lisa_serve::api::{AssembleRequest, BatchRequest, SimulateRequest};
use lisa_serve::http::{parse_request, Limits, Request, Response};
use proptest::prelude::*;

/// RFC 7230 token characters (header names, methods).
fn token_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_-]{1,12}"
}

/// Visible-ASCII request targets.
fn target_strategy() -> impl Strategy<Value = String> {
    "[a-z0-9/.?=&]{0,24}".prop_map(|rest| format!("/{rest}"))
}

/// Header values: printable ASCII without CR/LF (trimmed, since the
/// parser strips optional whitespace around values).
fn header_value_strategy() -> impl Strategy<Value = String> {
    "[ -~]{0,20}".prop_map(|v| v.trim().to_owned())
}

/// Whole valid requests. Header names that the serializer/parser treat
/// specially (framing and connection control) are excluded so the
/// round-trip comparison stays exact.
fn request_strategy() -> impl Strategy<Value = Request> {
    let headers = prop::collection::vec((token_strategy(), header_value_strategy()), 0..=6);
    let body = prop::collection::vec(any::<u8>(), 0..=200);
    (token_strategy(), target_strategy(), headers, body).prop_map(
        |(method, target, headers, body)| Request {
            method,
            target,
            http11: true,
            headers: headers
                .into_iter()
                .filter(|(n, _)| {
                    !n.eq_ignore_ascii_case("content-length")
                        && !n.eq_ignore_ascii_case("connection")
                        && !n.eq_ignore_ascii_case("transfer-encoding")
                })
                .collect(),
            body,
        },
    )
}

proptest! {
    /// Invariant 1a: completely arbitrary bytes never panic the parser.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..=512)) {
        let limits = Limits::default();
        let _ = parse_request(&bytes, &limits);
    }

    /// Invariant 1b: HTTP-ish soup (valid prefix + mutations) never
    /// panics and never returns a request that claims more bytes than
    /// the buffer holds.
    #[test]
    fn mutated_requests_never_panic(
        req in request_strategy(),
        flip_at in any::<u16>(),
        flip_to in any::<u8>(),
        truncate_to in any::<u16>(),
    ) {
        let mut bytes = req.to_bytes();
        if !bytes.is_empty() {
            let i = flip_at as usize % bytes.len();
            bytes[i] = flip_to;
        }
        bytes.truncate(truncate_to as usize % (bytes.len() + 1));
        let limits = Limits::default();
        if let Ok(Some((_, consumed))) = parse_request(&bytes, &limits) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    /// Invariant 2: serialize → parse round-trips exactly and consumes
    /// the whole serialization.
    #[test]
    fn serialize_parse_round_trips(req in request_strategy()) {
        let bytes = req.to_bytes();
        let limits = Limits::default();
        let (back, consumed) = parse_request(&bytes, &limits)
            .expect("serialized request must parse")
            .expect("serialized request must be complete");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(&back.method, &req.method);
        prop_assert_eq!(&back.target, &req.target);
        prop_assert_eq!(&back.body, &req.body);
        // The serializer synthesizes Content-Length; ignore it when
        // comparing the header lists.
        let echoed: Vec<_> = back
            .headers
            .iter()
            .filter(|(n, _)| !n.eq_ignore_ascii_case("content-length"))
            .cloned()
            .collect();
        prop_assert_eq!(&echoed, &req.headers);
    }

    /// Every prefix of a valid request either asks for more bytes or
    /// fails cleanly — it never parses as complete.
    #[test]
    fn prefixes_never_parse_as_complete(req in request_strategy(), cut in any::<u16>()) {
        let bytes = req.to_bytes();
        let cut = cut as usize % bytes.len().max(1);
        let limits = Limits::default();
        if let Ok(Some((_, consumed))) = parse_request(&bytes[..cut], &limits) {
            prop_assert!(consumed <= cut);
        }
    }

    /// Responses always serialize with a well-formed head.
    #[test]
    fn response_heads_are_well_formed(
        status in 100u16..600,
        body in prop::collection::vec(any::<u8>(), 0..=100),
        close in any::<bool>(),
    ) {
        let mut resp = Response::new(status);
        resp.body = body;
        let mut out = Vec::new();
        resp.write_to(&mut out, close).expect("write to Vec");
        let text = String::from_utf8_lossy(&out);
        prop_assert!(text.starts_with(&format!("HTTP/1.1 {status} ")), "{}", text);
        prop_assert!(out.windows(4).any(|w| w == b"\r\n\r\n"));
    }

    /// Invariant 3a: assemble bodies round-trip through JSON.
    #[test]
    fn assemble_request_json_round_trips(
        model in "[a-z0-9_]{1,12}",
        program in "[ -~\\n\\t]{0,80}",
    ) {
        let req = AssembleRequest { model, program };
        let back = AssembleRequest::from_json(req.to_json().as_bytes())
            .expect("serialized body must parse");
        prop_assert_eq!(back, req);
    }

    /// Invariant 3b: simulate bodies (with dump lists and escapes in the
    /// program text) round-trip through JSON.
    #[test]
    fn simulate_request_json_round_trips(
        model in "[a-z0-9_]{1,12}",
        program in prop::collection::vec(any::<char>(), 0..=40),
        mode in prop_oneof![Just("interp".to_owned()), Just("compiled".to_owned())],
        max_cycles in 0u64..10_000_000,
        dump in prop::collection::vec(("[A-Za-z]{1,6}", 0usize..64), 0..=4),
        probes in prop::collection::vec("[ -~]{1,24}", 0..=3),
    ) {
        let req = SimulateRequest {
            model,
            program: program.into_iter().collect(),
            mode,
            max_cycles,
            dump,
            probes,
        };
        let back = SimulateRequest::from_json(req.to_json().as_bytes())
            .expect("serialized body must parse");
        prop_assert_eq!(back, req);
    }

    /// Invariant 3c: batch bodies round-trip through JSON.
    #[test]
    fn batch_request_json_round_trips(
        mode in prop_oneof![
            Just("interp".to_owned()),
            Just("compiled".to_owned()),
            Just("both".to_owned())
        ],
        workers in 1usize..=16,
    ) {
        let req = BatchRequest { mode, workers };
        let back =
            BatchRequest::from_json(req.to_json().as_bytes()).expect("serialized body must parse");
        prop_assert_eq!(back, req);
    }
}

//! End-to-end span tracing through a live server: one `/v1/simulate`
//! request over loopback must yield a single connected span tree
//! reaching from the serve layer (`accept`, `queue_wait`, `request`)
//! down through the simulator (`cycle_chunk`), observable afterwards
//! via `GET /v1/debug/spans`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lisa_metrics::json::{parse, Value};
use lisa_serve::{AppState, ServeConfig, Server, ServerHandle};

fn boot() -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue: 16,
        timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let server = Server::bind(config, Arc::new(AppState::new())).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle, join)
}

/// One `Connection: close` request; returns the response body.
fn roundtrip(addr: SocketAddr, request: &[u8]) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    conn.write_all(request).expect("write request");
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    assert!(head.starts_with("HTTP/1.1 200"), "unexpected response: {head}");
    body.to_owned()
}

#[test]
fn one_simulate_request_yields_a_single_connected_span_tree() {
    let (addr, handle, join) = boot();

    let body =
        br#"{"model": "tinyrisc", "program": "LDI R1, 20\nLDI R2, 22\nADD R3, R1, R2\nHLT\n"}"#;
    let sim = format!(
        "POST /v1/simulate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        String::from_utf8_lossy(body)
    );
    let resp = roundtrip(addr, sim.as_bytes());
    assert!(resp.contains("\"halted\": true"), "simulate failed: {resp}");

    // The accept root is recorded when the connection's worker finishes
    // with it, which races this client's read of the close; poll.
    let debug = b"GET /v1/debug/spans?limit=4096 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    let deadline = Instant::now() + Duration::from_secs(5);
    let spans = loop {
        let body = roundtrip(addr, debug);
        let doc = parse(&body).expect("debug/spans JSON");
        let spans = match doc.get("spans") {
            Some(Value::Arr(items)) => items.clone(),
            other => panic!("missing spans array: {other:?}"),
        };
        let accepted =
            spans.iter().any(|s| s.get("name").and_then(Value::as_str) == Some("accept"));
        if accepted {
            break spans;
        }
        assert!(Instant::now() < deadline, "accept span never appeared");
        std::thread::sleep(Duration::from_millis(20));
    };

    handle.shutdown();
    join.join().expect("server thread");

    // Identify the simulate request's trace by its `run` span.
    let field = |s: &Value, key: &str| -> u64 {
        s.get(key)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("span field {key} missing or non-numeric"))
    };
    let name = |s: &Value| -> String {
        s.get("name")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("span name missing"))
            .to_owned()
    };
    let run = spans.iter().find(|s| name(s) == "run").expect("run span recorded");
    let trace = field(run, "trace");
    assert_ne!(trace, 0, "request spans must not land on the infra trace");
    let tree: Vec<&Value> = spans.iter().filter(|s| field(s, "trace") == trace).collect();

    // Every layer is present in the one trace.
    let names: Vec<String> = tree.iter().map(|s| name(s)).collect();
    for expected in [
        "accept",
        "queue_wait",
        "parse",
        "request",
        "route",
        "assemble",
        "run",
        "serialize",
        "write",
        "cycle_chunk",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected} in {names:?}");
    }

    // The tree is connected: unique ids, exactly one root (the accept
    // span), and every parent resolves to another span in the trace.
    let ids: Vec<u64> = tree.iter().map(|s| field(s, "span")).collect();
    let mut dedup = ids.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), ids.len(), "span ids must be unique");
    let roots: Vec<&&Value> = tree.iter().filter(|s| field(s, "parent") == 0).collect();
    assert_eq!(roots.len(), 1, "one root expected, got {roots:?}");
    assert_eq!(name(roots[0]), "accept");
    for span in &tree {
        let parent = field(span, "parent");
        assert!(
            parent == 0 || ids.contains(&parent),
            "dangling parent {parent} on {:?}",
            name(span)
        );
    }
}

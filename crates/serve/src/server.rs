//! The TCP front end: bounded accept queue, worker pool, per-request
//! deadlines, load shedding and graceful drain.
//!
//! The shape is a classic thread-per-worker accept loop:
//!
//! * the **acceptor** (the thread that called [`Server::run`]) polls the
//!   listener and pushes connections into a bounded queue — when the
//!   queue is full the connection is answered `503` and closed
//!   immediately (load shedding beats unbounded latency);
//! * **workers** pop connections and run the keep-alive loop: read one
//!   request (under the read deadline), dispatch it against
//!   [`AppState`], write the response, repeat;
//! * **shutdown** ([`ServerHandle::shutdown`]) stops the acceptor,
//!   then lets every worker *drain*: queued connections are still
//!   served, pipelined requests already buffered are answered, and the
//!   last response on each connection carries `Connection: close`.
//!
//! Everything observable lands in the shared metrics registry:
//! connections accepted/shed, queue depth, and the per-endpoint
//! counters/histograms recorded by [`AppState::dispatch`].

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lisa_spans::{SpanKind, SpanRecorder, SpanScope};

use crate::http::{parse_request, Limits, Response};
use crate::service::AppState;

/// The reserved trace id for infrastructure spans (lock acquisition,
/// shed, drain): they describe the server, not any one request, so they
/// stay out of the per-request trees.
const INFRA_TRACE: u64 = 0;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded accept-queue capacity; a full queue sheds with `503`.
    pub queue: usize,
    /// Per-request deadline (read + handle + write).
    pub timeout: Duration,
    /// Serve a single connection, then return (deterministic tests).
    pub once: bool,
    /// HTTP parsing limits.
    pub limits: Limits,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue: 64,
            timeout: Duration::from_millis(5000),
            once: false,
            limits: Limits::default(),
        }
    }
}

/// What a finished server reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted (including those later drained).
    pub accepted: u64,
    /// Connections shed with `503` because the queue was full.
    pub shed: u64,
}

/// A connection waiting for a worker, with its tracing identity: the
/// trace id, the pre-allocated `accept` root span id (recorded once the
/// connection finishes, so it covers the whole session), and the
/// enqueue timestamp the worker turns into a `queue_wait` span.
struct QueuedConn {
    conn: TcpStream,
    trace: u64,
    accept: u64,
    queued_ns: u64,
}

impl QueuedConn {
    /// A connection with no tracing identity (recorder disabled, tests).
    fn untraced(conn: TcpStream) -> QueuedConn {
        QueuedConn { conn, trace: 0, accept: 0, queued_ns: 0 }
    }
}

/// Why the accept queue rejected a connection.
enum Push {
    Queued,
    Full(QueuedConn),
    Closed,
}

/// The bounded connection queue shared by acceptor and workers.
struct ConnQueue {
    inner: Mutex<(VecDeque<QueuedConn>, bool)>,
    ready: Condvar,
    capacity: usize,
    /// Lock-acquisition spans (`lock_push`/`lock_pop`) land here on the
    /// infra trace; `None` records nothing.
    spans: Option<Arc<SpanRecorder>>,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            capacity,
            spans: None,
        }
    }

    fn with_spans(mut self, spans: Arc<SpanRecorder>) -> ConnQueue {
        self.spans = Some(spans);
        self
    }

    /// Records how long acquiring the queue mutex took — the lock-hold
    /// contention the accept path and the workers inflict on each other.
    fn record_lock(&self, kind: SpanKind, start_ns: Option<u64>) {
        if let (Some(spans), Some(start)) = (&self.spans, start_ns) {
            let now = spans.now_ns();
            spans.record(INFRA_TRACE, 0, kind, 0, start, now.saturating_sub(start));
        }
    }

    fn lock_clock(&self) -> Option<u64> {
        self.spans.as_ref().filter(|s| s.is_enabled()).map(|s| s.now_ns())
    }

    /// Pushes a connection, returning it back when the queue is full so
    /// the caller can shed it.
    fn push(&self, conn: QueuedConn) -> Push {
        let t0 = self.lock_clock();
        let mut guard = self.inner.lock().expect("queue lock");
        self.record_lock(SpanKind::LockPush, t0);
        if guard.1 {
            return Push::Closed;
        }
        if guard.0.len() >= self.capacity {
            return Push::Full(conn);
        }
        guard.0.push_back(conn);
        drop(guard);
        self.ready.notify_one();
        Push::Queued
    }

    /// Pops the next connection; `None` once closed **and** empty, so
    /// queued connections are always drained before workers exit.
    fn pop(&self) -> Option<QueuedConn> {
        let t0 = self.lock_clock();
        let mut guard = self.inner.lock().expect("queue lock");
        self.record_lock(SpanKind::LockPop, t0);
        loop {
            if let Some(conn) = guard.0.pop_front() {
                return Some(conn);
            }
            if guard.1 {
                return None;
            }
            guard = self.ready.wait(guard).expect("queue lock");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue lock").1 = true;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").0.len()
    }
}

/// Clone-able shutdown handle for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Asks the server to stop accepting and drain in-flight work;
    /// [`Server::run`] returns once the drain completes.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A bound-but-not-yet-running service.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Address parse and bind failures.
    pub fn bind(config: ServeConfig, state: Arc<AppState>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server { listener, config, state, stop: Arc::new(AtomicBool::new(false)) })
    }

    /// The bound socket address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle usable from other threads.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { stop: Arc::clone(&self.stop) }
    }

    /// Runs the accept loop and worker pool until shutdown (or, with
    /// `once`, until the first connection has been fully served).
    /// Blocks; returns the accept/shed tally.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only — per-connection I/O failures are
    /// absorbed (a dead client must never take the service down).
    pub fn run(self) -> io::Result<ServeSummary> {
        let reg = self.state.registry();
        let accepted_ctr =
            reg.counter("lisa_serve_connections_accepted_total", "Connections accepted.", &[]);
        let shed_ctr = reg.counter(
            "lisa_serve_connections_shed_total",
            "Connections answered 503 because the accept queue was full.",
            &[],
        );
        let depth_gauge =
            reg.gauge("lisa_serve_queue_depth", "Connections waiting for a worker.", &[]);

        let spans = Arc::clone(self.state.spans());
        let queue = ConnQueue::new(self.config.queue.max(1)).with_spans(Arc::clone(&spans));
        let workers = self.config.workers.max(1);
        self.listener.set_nonblocking(true)?;

        let mut summary = ServeSummary { accepted: 0, shed: 0 };
        let drain_start = std::thread::scope(|scope| {
            for worker in 0..workers {
                let (queue, spans, depth_gauge) = (&queue, &spans, &depth_gauge);
                let (state, config, stop) = (&self.state, &self.config, &self.stop);
                let worker = worker as u32;
                scope.spawn(move || {
                    while let Some(qc) = queue.pop() {
                        depth_gauge.set(queue.depth() as i64);
                        let QueuedConn { conn, trace, accept, queued_ns } = qc;
                        let scope = (trace != 0).then(|| {
                            let now = spans.now_ns();
                            spans.record(
                                trace,
                                accept,
                                SpanKind::QueueWait,
                                worker,
                                queued_ns,
                                now.saturating_sub(queued_ns),
                            );
                            SpanScope { recorder: Arc::clone(spans), trace, parent: accept, worker }
                        });
                        handle_connection(conn, scope.as_ref(), state, config, stop);
                        if trace != 0 {
                            // The accept root covers the whole session:
                            // enqueue, queue wait, every request on the
                            // connection.
                            let now = spans.now_ns();
                            spans.record_with_id(
                                accept,
                                trace,
                                0,
                                SpanKind::Accept,
                                worker,
                                queued_ns,
                                now.saturating_sub(queued_ns),
                            );
                        }
                    }
                });
            }

            loop {
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((conn, _peer)) => {
                        summary.accepted += 1;
                        accepted_ctr.inc();
                        // Back to blocking I/O for the actual session;
                        // disable Nagle so small responses leave now.
                        let _ = conn.set_nonblocking(false);
                        let _ = conn.set_nodelay(true);
                        let qc = if spans.is_enabled() {
                            QueuedConn {
                                conn,
                                trace: spans.new_trace(),
                                accept: spans.alloc_id(),
                                queued_ns: spans.now_ns(),
                            }
                        } else {
                            QueuedConn::untraced(conn)
                        };
                        match queue.push(qc) {
                            Push::Queued => depth_gauge.set(queue.depth() as i64),
                            Push::Full(qc) => {
                                summary.shed += 1;
                                shed_ctr.inc();
                                let t0 = spans.is_enabled().then(|| spans.now_ns());
                                shed(qc.conn);
                                if let Some(t0) = t0 {
                                    let now = spans.now_ns();
                                    spans.record(
                                        INFRA_TRACE,
                                        0,
                                        SpanKind::Shed,
                                        0,
                                        t0,
                                        now.saturating_sub(t0),
                                    );
                                }
                            }
                            Push::Closed => break,
                        }
                        if self.config.once {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        queue.close();
                        return Err(e);
                    }
                }
            }

            // Drain: close the queue; workers finish queued connections
            // (pop returns None only once the queue is empty).
            let drain_start = spans.is_enabled().then(|| spans.now_ns());
            queue.close();
            Ok(drain_start)
        })?;
        // The scope has joined every worker: the drain is complete.
        if let Some(t0) = drain_start {
            let now = spans.now_ns();
            spans.record(INFRA_TRACE, 0, SpanKind::Drain, 0, t0, now.saturating_sub(t0));
        }
        Ok(summary)
    }
}

/// Answers a shed connection with `503` without tying up a worker.
fn shed(mut conn: TcpStream) {
    let _ = conn.set_write_timeout(Some(Duration::from_millis(250)));
    let resp = Response::json(503, crate::api::error_body("server busy, try again"));
    let _ = resp.write_to(&mut conn, true);
}

/// The keep-alive loop for one connection. Per iteration: read until one
/// complete request is buffered (bounded by the read deadline), dispatch
/// it, write the response. Leaves quietly on client disconnect, answers
/// parse failures with their mapped status, and never panics the worker.
///
/// With a span scope (parented on the connection's `accept` root), each
/// iteration emits a `request` span wrapping `parse`, the dispatch tree
/// and `write`.
fn handle_connection(
    mut conn: TcpStream,
    spans: Option<&SpanScope>,
    state: &AppState,
    config: &ServeConfig,
    stop: &AtomicBool,
) {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];

    'requests: loop {
        let draining = stop.load(Ordering::SeqCst);
        // During drain, pull whatever the client already sent (pipelined
        // requests in flight) but don't wait around for new ones.
        let deadline = Instant::now()
            + if draining {
                config.timeout.min(Duration::from_millis(200))
            } else {
                config.timeout
            };

        // The request span starts when its first byte is seen, not when
        // the worker starts waiting — idle keep-alive time is not part
        // of any request.
        let mut parse_start = spans.filter(|_| !buf.is_empty()).map(|s| s.recorder.now_ns());

        // Accumulate bytes until one full request parses.
        let request = loop {
            match parse_request(&buf, &config.limits) {
                Ok(Some((request, consumed))) => {
                    buf.drain(..consumed);
                    break request;
                }
                Ok(None) => {}
                Err(e) => {
                    let _ = Response::for_error(&e).write_to(&mut conn, true);
                    break 'requests;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                // Mid-request (bytes buffered): tell the client; between
                // requests: just an idle keep-alive timeout.
                if !buf.is_empty() {
                    let _ = Response::text(408, "request timed out\n").write_to(&mut conn, true);
                }
                break 'requests;
            }
            let _ = conn.set_read_timeout(Some(deadline - now));
            match conn.read(&mut chunk) {
                Ok(0) => break 'requests, // client closed
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    if parse_start.is_none() {
                        parse_start = spans.map(|s| s.recorder.now_ns());
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Loop back; the deadline check above decides.
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break 'requests, // reset mid-request
            }
        };

        // Pre-allocate the request span id so parse/dispatch/write can
        // parent on it; it is recorded last, covering all of them.
        let req_span = spans.zip(parse_start).map(|(scope, start)| {
            let id = scope.recorder.alloc_id();
            let now = scope.recorder.now_ns();
            scope.recorder.record(
                scope.trace,
                id,
                SpanKind::Parse,
                scope.worker,
                start,
                now.saturating_sub(start),
            );
            (scope.child(id), id, start)
        });

        let keep_alive = request.keep_alive();
        let response = state.dispatch_spanned(
            &request,
            Instant::now() + config.timeout,
            req_span.as_ref().map(|(scope, _, _)| scope),
        );
        // Close when the client asked to, or when shutdown began and no
        // further pipelined request is already buffered.
        let draining = stop.load(Ordering::SeqCst);
        let close = !keep_alive || (draining && buf.is_empty());
        let _ = conn.set_write_timeout(Some(config.timeout));
        let write_guard = req_span.as_ref().map(|(scope, _, _)| scope.start(SpanKind::Write));
        let wrote = response.write_to(&mut conn, close);
        drop(write_guard);
        if let (Some(conn_scope), Some((scope, id, start))) = (spans, req_span) {
            let now = scope.recorder.now_ns();
            scope.recorder.record_with_id(
                id,
                scope.trace,
                conn_scope.parent,
                SpanKind::Request,
                scope.worker,
                start,
                now.saturating_sub(start),
            );
        }
        if wrote.is_err() || close {
            break;
        }
    }
    let _ = conn.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_sheds_when_full_and_drains_when_closed() {
        // Pure queue-discipline test over loopback socket pairs.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut clients = Vec::new();
        let mut server_side = Vec::new();
        for _ in 0..3 {
            clients.push(TcpStream::connect(addr).unwrap());
            server_side.push(listener.accept().unwrap().0);
        }

        let queue = ConnQueue::new(2);
        let mut it = server_side.into_iter().map(QueuedConn::untraced);
        assert!(matches!(queue.push(it.next().unwrap()), Push::Queued));
        assert!(matches!(queue.push(it.next().unwrap()), Push::Queued));
        assert!(matches!(queue.push(it.next().unwrap()), Push::Full(_)));
        assert_eq!(queue.depth(), 2);

        // Closing still hands out the queued connections, then None.
        queue.close();
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_none());

        // Pushing after close is rejected.
        let extra = TcpStream::connect(addr).unwrap();
        let held = QueuedConn::untraced(listener.accept().unwrap().0);
        assert!(matches!(queue.push(held), Push::Closed));
        drop(extra);
        drop(clients);
    }

    #[test]
    fn handle_reports_shutdown_state() {
        let state = Arc::new(AppState::new());
        let server = Server::bind(ServeConfig::default(), state).unwrap();
        let handle = server.handle();
        assert!(!handle.is_shutting_down());
        handle.shutdown();
        assert!(handle.is_shutting_down());
    }
}

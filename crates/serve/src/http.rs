//! A small, strict HTTP/1.1 message layer.
//!
//! The service speaks to load generators and `curl`, not to the whole
//! web, so the parser accepts the plain core of HTTP/1.1 and rejects
//! everything else loudly: exact `\r\n` line endings, no obsolete
//! header folding, no chunked bodies (`Content-Length` only), hard size
//! limits on the request line, the header block and the body. Parsing
//! is *incremental* over a byte buffer — [`parse_request`] either
//! returns a complete request plus the bytes it consumed, asks for more
//! input, or fails with an [`HttpError`] that maps to a concrete status
//! code — which makes the whole state machine a pure function the
//! property tests can hammer with arbitrary byte soup.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};

/// Size limits enforced while parsing a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Longest accepted request line (method + target + version).
    pub max_request_line: usize,
    /// Largest accepted header block (request line included), bytes.
    pub max_head_bytes: usize,
    /// Most headers accepted per request.
    pub max_headers: usize,
    /// Largest accepted `Content-Length`.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_request_line: 8 * 1024,
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body: 4 * 1024 * 1024,
        }
    }
}

/// A malformed or oversized request; each variant maps to the status
/// code the connection should die with.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HttpError {
    /// The request line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// The request line exceeds [`Limits::max_request_line`].
    RequestLineTooLong,
    /// The header block exceeds [`Limits::max_head_bytes`] or
    /// [`Limits::max_headers`].
    HeadersTooLarge,
    /// A header line is malformed (no colon, bad name, folding).
    BadHeader,
    /// `Content-Length` is unparsable or repeated with different values.
    BadContentLength,
    /// The declared body exceeds [`Limits::max_body`].
    BodyTooLarge,
    /// A body-bearing method arrived without `Content-Length`.
    LengthRequired,
    /// `Transfer-Encoding` (chunked bodies) is not supported.
    UnsupportedTransferEncoding,
    /// The HTTP version is not 1.0 or 1.1.
    UnsupportedVersion,
}

impl HttpError {
    /// The status code this parse failure answers with.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequestLine | HttpError::BadHeader | HttpError::BadContentLength => 400,
            HttpError::RequestLineTooLong => 414,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::LengthRequired => 411,
            HttpError::UnsupportedTransferEncoding => 501,
            HttpError::UnsupportedVersion => 505,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            HttpError::BadRequestLine => "malformed request line",
            HttpError::RequestLineTooLong => "request line too long",
            HttpError::HeadersTooLarge => "header block too large",
            HttpError::BadHeader => "malformed header",
            HttpError::BadContentLength => "bad Content-Length",
            HttpError::BodyTooLarge => "body too large",
            HttpError::LengthRequired => "Content-Length required",
            HttpError::UnsupportedTransferEncoding => "transfer encodings are not supported",
            HttpError::UnsupportedVersion => "unsupported HTTP version",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for HttpError {}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Headers in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, matched case-insensitively.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this request
    /// (HTTP/1.1 defaults to keep-alive, 1.0 to close).
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }

    /// Serializes the request back to wire bytes. `Content-Length` is
    /// derived from the body (and must not appear in `headers`); the
    /// result parses back to an equal `Request` — the round-trip
    /// property tests hold [`parse_request`] to exactly that.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let version = if self.http11 { "HTTP/1.1" } else { "HTTP/1.0" };
        let mut out = format!("{} {} {version}\r\n", self.method, self.target).into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if !self.body.is_empty() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// Is `b` a valid `token` byte (RFC 9110 field names and methods)?
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Is `b` acceptable in a request target? (visible ASCII, no spaces)
fn is_target_byte(b: u8) -> bool {
    (0x21..=0x7e).contains(&b)
}

/// Is `b` acceptable in a header value? (visible ASCII, space, tab)
fn is_value_byte(b: u8) -> bool {
    b == b'\t' || (0x20..=0x7e).contains(&b)
}

/// Attempts to parse one complete request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a full request (head and
/// body) is present, `Ok(None)` when more bytes are needed, and
/// `Err(HttpError)` when the prefix can never become a valid request
/// under `limits`. Never panics, for any input.
///
/// # Errors
///
/// See [`HttpError`]; each variant names the violated rule.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Option<(Request, usize)>, HttpError> {
    // Find the end of the header block without scanning unbounded input.
    let window = &buf[..buf.len().min(limits.max_head_bytes)];
    let head_len = match find_head_end(window) {
        Some(n) => n,
        None if buf.len() >= limits.max_head_bytes => {
            // Diagnose the oversized prefix: a request line that never
            // ends gets the more precise 414.
            let line_end = window.iter().position(|&b| b == b'\n');
            return Err(match line_end {
                None if window.len() > limits.max_request_line => HttpError::RequestLineTooLong,
                _ => HttpError::HeadersTooLarge,
            });
        }
        None => {
            // An incomplete head can still be rejected early if its
            // request line is already over budget.
            if window.iter().take(limits.max_request_line + 1).all(|&b| b != b'\n')
                && window.len() > limits.max_request_line
            {
                return Err(HttpError::RequestLineTooLong);
            }
            return Ok(None);
        }
    };
    let head = &buf[..head_len];

    let lines = head_lines(head)?;
    let (request_line, header_lines) = lines.split_first().ok_or(HttpError::BadRequestLine)?;
    if request_line.len() > limits.max_request_line {
        return Err(HttpError::RequestLineTooLong);
    }
    let (method, target, http11) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for &line in header_lines {
        if headers.len() == limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = parse_header_line(line)?;
        if name.eq_ignore_ascii_case(b"transfer-encoding") {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        if name.eq_ignore_ascii_case(b"content-length") {
            let parsed: usize = std::str::from_utf8(value)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .ok_or(HttpError::BadContentLength)?;
            match content_length {
                Some(prev) if prev != parsed => return Err(HttpError::BadContentLength),
                _ => content_length = Some(parsed),
            }
        }
        headers.push((
            String::from_utf8_lossy(name).into_owned(),
            String::from_utf8_lossy(value).into_owned(),
        ));
    }

    let body_len = match content_length {
        Some(n) if n > limits.max_body => return Err(HttpError::BodyTooLarge),
        Some(n) => n,
        // A POST/PUT without Content-Length has no delimited body; the
        // caller can't know where it ends, so require the header.
        None if matches!(method, "POST" | "PUT" | "PATCH") => {
            return Err(HttpError::LengthRequired)
        }
        None => 0,
    };
    let total = head_len + body_len;
    if buf.len() < total {
        return Ok(None);
    }

    Ok(Some((
        Request {
            method: method.to_owned(),
            target: target.to_owned(),
            http11,
            headers,
            body: buf[head_len..total].to_vec(),
        },
        total,
    )))
}

/// Byte offset just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Splits the head (request line + headers) into `\r\n`-terminated
/// lines; a bare `\n` or stray `\r` is an error, which keeps request
/// smuggling tricks out.
fn head_lines(head: &[u8]) -> Result<Vec<&[u8]>, HttpError> {
    let content = head.strip_suffix(b"\r\n\r\n").ok_or(HttpError::BadRequestLine)?;
    let pieces: Vec<&[u8]> = content.split(|&b| b == b'\n').collect();
    let last = pieces.len() - 1;
    pieces
        .into_iter()
        .enumerate()
        .map(|(i, piece)| {
            let line = if i < last {
                piece.strip_suffix(b"\r").ok_or(HttpError::BadHeader)?
            } else {
                piece
            };
            if line.contains(&b'\r') {
                return Err(HttpError::BadHeader);
            }
            Ok(line)
        })
        .collect()
}

fn parse_request_line(line: &[u8]) -> Result<(&str, &str, bool), HttpError> {
    let text = std::str::from_utf8(line).map_err(|_| HttpError::BadRequestLine)?;
    let mut parts = text.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequestLine);
    };
    if method.is_empty() || !method.bytes().all(is_token_byte) {
        return Err(HttpError::BadRequestLine);
    }
    if target.is_empty() || !target.bytes().all(is_target_byte) {
        return Err(HttpError::BadRequestLine);
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => return Err(HttpError::UnsupportedVersion),
        _ => return Err(HttpError::BadRequestLine),
    };
    Ok((method, target, http11))
}

fn parse_header_line(line: &[u8]) -> Result<(&[u8], &[u8]), HttpError> {
    // Obsolete line folding (leading whitespace) is rejected outright.
    if line.first().is_some_and(|&b| b == b' ' || b == b'\t') {
        return Err(HttpError::BadHeader);
    }
    let colon = line.iter().position(|&b| b == b':').ok_or(HttpError::BadHeader)?;
    let (name, rest) = line.split_at(colon);
    if name.is_empty() || !name.iter().all(|&b| is_token_byte(b)) {
        return Err(HttpError::BadHeader);
    }
    let value = trim_ascii(&rest[1..]);
    if !value.iter().all(|&b| is_value_byte(b)) {
        return Err(HttpError::BadHeader);
    }
    Ok((name, value))
}

fn trim_ascii(mut v: &[u8]) -> &[u8] {
    while v.first().is_some_and(|&b| b == b' ' || b == b'\t') {
        v = &v[1..];
    }
    while v.last().is_some_and(|&b| b == b' ' || b == b'\t') {
        v = &v[..v.len() - 1];
    }
    v
}

/// Canonical reason phrase for the status codes the service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Content Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// A response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length` and `Connection` are emitted by
    /// [`Response::write_to`], not listed here).
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    #[must_use]
    pub fn new(status: u16) -> Response {
        Response { status, headers: BTreeMap::new(), body: Vec::new() }
    }

    /// A `text/plain` response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        let mut r = Response::new(status);
        r.headers.insert("Content-Type".to_owned(), "text/plain; charset=utf-8".to_owned());
        r.body = body.into().into_bytes();
        r
    }

    /// A `200` Prometheus exposition response. The content type carries
    /// the exposition-format version (`text/plain; version=0.0.4`) so
    /// scrapers negotiate correctly; plain endpoints like `/healthz`
    /// keep [`Response::text`]'s generic `text/plain`.
    #[must_use]
    pub fn prometheus(body: impl Into<String>) -> Response {
        let mut r = Response::new(200);
        r.headers.insert(
            "Content-Type".to_owned(),
            "text/plain; version=0.0.4; charset=utf-8".to_owned(),
        );
        r.body = body.into().into_bytes();
        r
    }

    /// An `application/json` response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        let mut r = Response::new(status);
        r.headers.insert("Content-Type".to_owned(), "application/json".to_owned());
        r.body = body.into().into_bytes();
        r
    }

    /// The error response for a parse failure (always closes).
    #[must_use]
    pub fn for_error(err: &HttpError) -> Response {
        Response::text(err.status(), format!("{err}\n"))
    }

    /// Writes the full response; `close` controls the `Connection`
    /// header so clients see exactly what the server will do next.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status)).into_bytes();
        for (name, value) in &self.headers {
            head.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        head.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        head.extend_from_slice(if close {
            b"Connection: close\r\n" as &[u8]
        } else {
            b"Connection: keep-alive\r\n"
        });
        head.extend_from_slice(b"\r\n");
        // One write for head + body: a split write interacts badly with
        // Nagle's algorithm (the body write stalls until the head is
        // ACKed), and a single syscall is cheaper anyway.
        head.extend_from_slice(&self.body);
        w.write_all(&head)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Request {
        let (req, consumed) =
            parse_request(bytes, &Limits::default()).expect("parses").expect("complete");
        assert_eq!(consumed, bytes.len());
        req
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_a_post_with_content_length() {
        let req = parse_all(b"POST /v1/assemble HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn needs_more_bytes_until_the_body_arrives() {
        let full = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        for cut in 0..full.len() {
            assert_eq!(
                parse_request(&full[..cut], &Limits::default()).expect("prefixes never error"),
                None,
                "cut at {cut}"
            );
        }
        assert!(parse_request(full, &Limits::default()).unwrap().is_some());
    }

    #[test]
    fn pipelined_requests_consume_exactly_one_message() {
        let bytes = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (first, used) = parse_request(bytes, &Limits::default()).unwrap().unwrap();
        assert_eq!(first.target, "/a");
        let (second, used2) = parse_request(&bytes[used..], &Limits::default()).unwrap().unwrap();
        assert_eq!(second.target, "/b");
        assert_eq!(used + used2, bytes.len());
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for bad in [
            "GET\r\n\r\n",
            "GET  /two-spaces HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "G ET /x HTTP/1.1\r\n\r\n",
            "GET /x y HTTP/1.1\r\n\r\n",
            "GET /x FTP/1.1\r\n\r\n",
            " GET /x HTTP/1.1\r\n\r\n",
        ] {
            assert_eq!(
                parse_request(bad.as_bytes(), &Limits::default()),
                Err(HttpError::BadRequestLine),
                "{bad:?}"
            );
        }
        assert_eq!(
            parse_request(b"GET /x HTTP/2.0\r\n\r\n", &Limits::default()),
            Err(HttpError::UnsupportedVersion)
        );
    }

    #[test]
    fn bare_lf_and_folding_are_rejected() {
        assert!(parse_request(b"GET /x HTTP/1.1\nHost: x\r\n\r\n\r\n", &Limits::default()).is_err());
        assert_eq!(
            parse_request(b"GET /x HTTP/1.1\r\nA: b\r\n c\r\n\r\n", &Limits::default()),
            Err(HttpError::BadHeader)
        );
    }

    #[test]
    fn content_length_violations() {
        assert_eq!(
            parse_request(b"POST /x HTTP/1.1\r\n\r\n", &Limits::default()),
            Err(HttpError::LengthRequired)
        );
        assert_eq!(
            parse_request(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", &Limits::default()),
            Err(HttpError::BadContentLength)
        );
        assert_eq!(
            parse_request(
                b"POST /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
                &Limits::default()
            ),
            Err(HttpError::BadContentLength)
        );
        let limits = Limits { max_body: 8, ..Limits::default() };
        assert_eq!(
            parse_request(b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n", &limits),
            Err(HttpError::BodyTooLarge)
        );
    }

    #[test]
    fn chunked_bodies_are_501() {
        assert_eq!(
            parse_request(
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                &Limits::default()
            ),
            Err(HttpError::UnsupportedTransferEncoding)
        );
    }

    #[test]
    fn size_limits_fire() {
        let limits = Limits { max_request_line: 16, max_head_bytes: 64, ..Limits::default() };
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64));
        assert_eq!(
            parse_request(long_line.as_bytes(), &limits),
            Err(HttpError::RequestLineTooLong)
        );
        let many_headers = format!("GET / HTTP/1.1\r\n{}\r\n", "A: b\r\n".repeat(20));
        assert_eq!(
            parse_request(many_headers.as_bytes(), &limits),
            Err(HttpError::HeadersTooLarge)
        );
        // A header block that never terminates trips the byte cap too.
        let endless = format!("GET / HTTP/1.1\r\nA: {}", "b".repeat(128));
        assert_eq!(parse_request(endless.as_bytes(), &limits), Err(HttpError::HeadersTooLarge));
        let limits = Limits { max_headers: 2, ..Limits::default() };
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n", &limits),
            Err(HttpError::HeadersTooLarge)
        );
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        assert!(parse_all(b"GET / HTTP/1.1\r\n\r\n").keep_alive());
        assert!(!parse_all(b"GET / HTTP/1.0\r\n\r\n").keep_alive());
        assert!(!parse_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
        assert!(parse_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive());
    }

    #[test]
    fn serialization_round_trips() {
        let req = Request {
            method: "POST".to_owned(),
            target: "/v1/simulate?x=1".to_owned(),
            http11: true,
            headers: vec![("Host".to_owned(), "localhost".to_owned())],
            body: b"{\"model\":\"tinyrisc\"}".to_vec(),
        };
        let bytes = req.to_bytes();
        let (back, consumed) = parse_request(&bytes, &Limits::default()).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        // Content-Length is synthesized on the wire; drop it to compare.
        let mut back = back;
        back.headers.retain(|(n, _)| !n.eq_ignore_ascii_case("content-length"));
        assert_eq!(back, req);
    }

    #[test]
    fn responses_have_well_formed_heads() {
        let mut buf = Vec::new();
        Response::json(200, "{}").write_to(&mut buf, false).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");

        let mut buf = Vec::new();
        Response::for_error(&HttpError::HeadersTooLarge).write_to(&mut buf, true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 431 Request Header Fields Too Large\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
    }
}

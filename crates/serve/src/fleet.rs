//! The fleet coordinator: fan one fuzzing budget out across several
//! lisa-serve instances over `/v1/fuzz`.
//!
//! Every program is a pure function of `(seed, iteration index)`, so
//! the coordinator partitions `[seed_start, seed_start + seed_count)`
//! into disjoint contiguous chunks — one per instance — and the fleet
//! collectively checks exactly the same program set a single instance
//! would, just in parallel. Responses merge losslessly: coverage maps
//! join (per-path max), reproducers deduplicate by content hash (the
//! same hash the `.repro` corpus format embeds in file names).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use lisa_conform::{CoverageMap, Reproducer};
use lisa_metrics::json::{self, Value};

use crate::api::{self, FuzzRequest};
use crate::client;

/// One fleet-wide fuzzing assignment.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Model to fuzz on every instance.
    pub model: String,
    /// Master seed shared by the whole fleet.
    pub seed: u64,
    /// First iteration index of the fleet-wide range.
    pub seed_start: u64,
    /// Total programs across all instances.
    pub seed_count: u64,
    /// Maximum synthesized prefix length, in words.
    pub max_len: u64,
    /// Cycle budget per simulated run.
    pub max_cycles: u64,
    /// Harness validation: inject a fault on every instance and demand
    /// each catches it. The range is NOT split in this mode — every
    /// instance gets the identical assignment, so their reproducers
    /// must deduplicate to one.
    pub self_check: bool,
    /// Per-request client timeout.
    pub timeout: Duration,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            model: "tinyrisc".to_owned(),
            seed: 0,
            seed_start: 0,
            seed_count: 500,
            max_len: 24,
            max_cycles: 2000,
            self_check: false,
            timeout: Duration::from_secs(600),
        }
    }
}

/// What one instance reported back (or failed to).
#[derive(Debug, Clone)]
pub struct InstanceReport {
    /// The instance address (`host:port`).
    pub addr: String,
    /// First iteration index assigned to this instance.
    pub seed_start: u64,
    /// Programs assigned to this instance.
    pub seed_count: u64,
    /// Iterations the instance actually completed.
    pub iterations: u64,
    /// Clean halts.
    pub halted: u64,
    /// Budget exhaustions.
    pub budget: u64,
    /// Agreed errors.
    pub errored: u64,
    /// Distinct paths this instance covered.
    pub paths: usize,
    /// Reproducers this instance returned (before fleet-wide dedup).
    pub found: usize,
    /// Transport or HTTP failure, if the instance did not answer 200.
    pub error: Option<String>,
}

/// The merged fleet view.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Per-instance outcomes, in remote order.
    pub instances: Vec<InstanceReport>,
    /// Fleet-wide merged coverage.
    pub coverage: CoverageMap,
    /// Reproducers deduplicated by content hash, in hash order.
    pub reproducers: Vec<Reproducer>,
}

impl FleetReport {
    /// Total iterations completed across the fleet.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.instances.iter().map(|i| i.iterations).sum()
    }

    /// Number of oracle divergences found (pre-dedup instance count).
    #[must_use]
    pub fn divergences(&self) -> usize {
        self.instances.iter().map(|i| i.found).sum()
    }

    /// Whether every instance answered and no oracle fired.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.instances.iter().all(|i| i.error.is_none()) && self.divergences() == 0
    }

    /// A human-readable fleet table.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>10} {:>10} {:>8} {:>8} {:>8} {:>7} {:>6}",
            "instance", "range", "iters", "halted", "budget", "errored", "paths", "found"
        );
        let _ = writeln!(out, "{}", "-".repeat(86));
        for inst in &self.instances {
            match &inst.error {
                Some(e) => {
                    let _ = writeln!(out, "{:<22} ERROR: {e}", inst.addr);
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{:<22} {:>10} {:>10} {:>8} {:>8} {:>8} {:>7} {:>6}",
                        inst.addr,
                        format!("{}+{}", inst.seed_start, inst.seed_count),
                        inst.iterations,
                        inst.halted,
                        inst.budget,
                        inst.errored,
                        inst.paths,
                        inst.found
                    );
                }
            }
        }
        let _ = writeln!(out, "{}", "-".repeat(86));
        let _ = writeln!(
            out,
            "fleet: {} iterations, {} paths covered, {} divergence(s), {} unique reproducer(s)",
            self.iterations(),
            self.coverage.len(),
            self.divergences(),
            self.reproducers.len()
        );
        out
    }

    /// Serializes the fleet report as JSON (instances, merged coverage,
    /// deduplicated reproducers).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"instances\": [");
        for (i, inst) in self.instances.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"addr\": {}, \"seed_start\": {}, \"seed_count\": {}, \"iterations\": {}, \
                 \"halted\": {}, \"budget\": {}, \"errored\": {}, \"paths\": {}, \"found\": {}",
                json::escape(&inst.addr),
                inst.seed_start,
                inst.seed_count,
                inst.iterations,
                inst.halted,
                inst.budget,
                inst.errored,
                inst.paths,
                inst.found
            );
            if let Some(e) = &inst.error {
                let _ = write!(out, ", \"error\": {}", json::escape(e));
            }
            out.push('}');
        }
        let _ = write!(
            out,
            "], \"divergences\": {}, \"passed\": {}, \"coverage\": {}, \"reproducers\": [",
            self.divergences(),
            self.passed(),
            self.coverage.to_json()
        );
        for (i, rep) in self.reproducers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&api::reproducer_json(rep));
        }
        out.push_str("]}");
        out
    }
}

/// Splits `count` into `n` contiguous chunks whose sizes differ by at
/// most one (early chunks take the remainder).
fn split_range(start: u64, count: u64, n: usize) -> Vec<(u64, u64)> {
    let n = n.max(1) as u64;
    let base = count / n;
    let rem = count % n;
    let mut chunks = Vec::new();
    let mut at = start;
    for i in 0..n {
        let size = base + u64::from(i < rem);
        chunks.push((at, size));
        at += size;
    }
    chunks
}

/// Fans the assignment across `remotes` (one thread per instance),
/// merges coverage, and deduplicates reproducers by content hash.
/// Transport failures are recorded per instance, never panicked.
#[must_use]
pub fn fuzz_fleet(remotes: &[String], cfg: &FleetConfig) -> FleetReport {
    let chunks = if cfg.self_check {
        // Same assignment everywhere: self-check validates each
        // instance's whole pipeline, not coverage throughput.
        vec![(cfg.seed_start, cfg.seed_count.max(1)); remotes.len()]
    } else {
        split_range(cfg.seed_start, cfg.seed_count, remotes.len())
    };
    let mut instances: Vec<InstanceOutcome> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = remotes
            .iter()
            .zip(&chunks)
            .map(|(addr, &(start, count))| {
                scope.spawn(move || fuzz_one_instance(addr, cfg, start, count))
            })
            .collect();
        for handle in handles {
            instances.push(handle.join().expect("instance thread never panics"));
        }
    });

    let mut report = FleetReport::default();
    let mut dedup: BTreeMap<u64, Reproducer> = BTreeMap::new();
    for (inst, cov, reps) in instances {
        report.instances.push(inst);
        report.coverage.merge(&cov);
        for rep in reps {
            dedup.entry(rep.content_hash()).or_insert(rep);
        }
    }
    report.reproducers = dedup.into_values().collect();
    report
}

type InstanceOutcome = (InstanceReport, CoverageMap, Vec<Reproducer>);

fn fuzz_one_instance(addr: &str, cfg: &FleetConfig, start: u64, count: u64) -> InstanceOutcome {
    let mut inst = InstanceReport {
        addr: addr.to_owned(),
        seed_start: start,
        seed_count: count,
        iterations: 0,
        halted: 0,
        budget: 0,
        errored: 0,
        paths: 0,
        found: 0,
        error: None,
    };
    if count == 0 {
        return (inst, CoverageMap::new(), Vec::new());
    }
    let request = FuzzRequest {
        model: cfg.model.clone(),
        seed: cfg.seed,
        seed_start: start,
        seed_count: count,
        max_len: cfg.max_len,
        max_cycles: cfg.max_cycles,
        self_check: cfg.self_check,
        distill: false,
    };
    let response = match client::post(addr, "/v1/fuzz", &request.to_json(), cfg.timeout) {
        Ok(r) => r,
        Err(e) => {
            inst.error = Some(format!("transport: {e}"));
            return (inst, CoverageMap::new(), Vec::new());
        }
    };
    let text = String::from_utf8_lossy(&response.body).into_owned();
    if response.status != 200 {
        let detail = json::parse(&text)
            .ok()
            .and_then(|v| v.get("error").and_then(Value::as_str).map(str::to_owned))
            .unwrap_or(text);
        inst.error = Some(format!("HTTP {}: {detail}", response.status));
        return (inst, CoverageMap::new(), Vec::new());
    }
    match parse_fuzz_response(&text) {
        Ok((counts, cov, reps)) => {
            (inst.iterations, inst.halted, inst.budget, inst.errored) = counts;
            inst.paths = cov.len();
            inst.found = reps.len();
            (inst, cov, reps)
        }
        Err(e) => {
            inst.error = Some(format!("bad response: {e}"));
            (inst, CoverageMap::new(), Vec::new())
        }
    }
}

type FuzzCounts = (u64, u64, u64, u64);

fn parse_fuzz_response(text: &str) -> Result<(FuzzCounts, CoverageMap, Vec<Reproducer>), String> {
    let doc = json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let num =
        |key: &str| doc.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing `{key}`"));
    let counts = (num("iterations")?, num("halted")?, num("budget")?, num("errored")?);
    let cov_value =
        doc.get("coverage").and_then(|c| c.get("map")).ok_or("missing `coverage.map`")?;
    let coverage = CoverageMap::from_value(cov_value)?;
    let mut reproducers = Vec::new();
    for item in doc.get("reproducers").and_then(Value::as_array).ok_or("missing `reproducers`")? {
        reproducers.push(api::reproducer_from_value(item)?);
    }
    Ok((counts, coverage, reproducers))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_range_is_disjoint_and_exhaustive() {
        for (start, count, n) in [(0u64, 10u64, 3usize), (5, 7, 2), (0, 2, 4), (100, 0, 3)] {
            let chunks = split_range(start, count, n);
            assert_eq!(chunks.len(), n);
            let mut at = start;
            for &(s, c) in &chunks {
                assert_eq!(s, at, "chunks must be contiguous");
                at += c;
            }
            assert_eq!(at, start + count, "chunks must cover the range exactly");
            let max = chunks.iter().map(|&(_, c)| c).max().unwrap();
            let min = chunks.iter().map(|&(_, c)| c).min().unwrap();
            assert!(max - min <= 1, "chunk sizes must differ by at most one");
        }
    }

    #[test]
    fn unreachable_instances_are_reported_not_fatal() {
        // A port from the discard range nobody listens on.
        let remotes = vec!["127.0.0.1:9".to_owned()];
        let cfg = FleetConfig {
            seed_count: 4,
            timeout: Duration::from_millis(500),
            ..FleetConfig::default()
        };
        let report = fuzz_fleet(&remotes, &cfg);
        assert_eq!(report.instances.len(), 1);
        assert!(report.instances[0].error.is_some());
        assert!(!report.passed());
        assert!(report.table().contains("ERROR"));
    }

    #[test]
    fn fleet_report_json_is_valid() {
        let mut report = FleetReport::default();
        report.coverage.record(7);
        report.instances.push(InstanceReport {
            addr: "127.0.0.1:1234".to_owned(),
            seed_start: 0,
            seed_count: 10,
            iterations: 10,
            halted: 9,
            budget: 1,
            errored: 0,
            paths: 1,
            found: 0,
            error: None,
        });
        let doc = json::parse(&report.to_json()).unwrap();
        assert_eq!(doc.get("passed").and_then(Value::as_bool), Some(true));
        assert_eq!(doc.get("divergences").and_then(Value::as_u64), Some(0));
        assert_eq!(doc.get("instances").and_then(Value::as_array).map(<[Value]>::len), Some(1));
    }
}

//! Request routing and the endpoint handlers.
//!
//! [`AppState`] owns everything a request needs — the builtin model
//! registry (each model parsed and analysed once at startup, the way
//! the paper generates its tool suite once per description) and the
//! shared metrics [`Registry`]. [`AppState::dispatch`] is a pure
//! `Request -> Response` function over that state, so the whole request
//! path is testable without a socket.

use std::time::{Duration, Instant};

use lisa_asm::Assembler;
use lisa_core::Model;
use lisa_exec::{BatchObserver, BatchRunner};
use lisa_metrics::Registry;
use lisa_models::kernels::full_matrix;
use lisa_models::{accu16, scalar2, tinyrisc, vliw62};
use lisa_sim::{SimError, SimMode, Simulator};

use crate::api::{self, AssembleRequest, BatchRequest, SimulateOutcome, SimulateRequest};
use crate::http::{Request, Response};

/// One builtin model, ready to serve requests.
pub struct ServedModel {
    /// Registry name (`tinyrisc`, `accu16`, `scalar2`, `vliw62`).
    pub name: &'static str,
    /// The analysed model database.
    pub model: Model,
    /// Program-memory resource programs load into.
    pub program_memory: &'static str,
    /// Halt-flag resource.
    pub halt_flag: &'static str,
    /// VLIW fetch-packet size, when packet assembly applies.
    pub packet: Option<usize>,
}

impl ServedModel {
    fn assembler(&self) -> Assembler<'_> {
        match self.packet {
            Some(n) => Assembler::with_packet(&self.model, n, 1),
            None => Assembler::new(&self.model),
        }
    }
}

/// Shared service state: models + metrics.
pub struct AppState {
    models: Vec<ServedModel>,
    registry: Registry,
}

impl AppState {
    /// Builds every builtin model and an empty metrics registry.
    ///
    /// # Panics
    ///
    /// Panics if a bundled model fails to build (a bug, covered by
    /// model tests).
    #[must_use]
    pub fn new() -> AppState {
        let models = vec![
            ServedModel {
                name: "tinyrisc",
                model: Model::from_source(tinyrisc::SOURCE).expect("tinyrisc builds"),
                program_memory: "pmem",
                halt_flag: "halt",
                packet: None,
            },
            ServedModel {
                name: "accu16",
                model: Model::from_source(accu16::SOURCE).expect("accu16 builds"),
                program_memory: "prog_mem",
                halt_flag: "halt",
                packet: None,
            },
            ServedModel {
                name: "scalar2",
                model: Model::from_source(scalar2::SOURCE).expect("scalar2 builds"),
                program_memory: "pmem",
                halt_flag: "halt",
                packet: None,
            },
            ServedModel {
                name: "vliw62",
                model: Model::from_source(vliw62::SOURCE).expect("vliw62 builds"),
                program_memory: "pmem",
                halt_flag: "halt",
                packet: Some(vliw62::FETCH_PACKET),
            },
        ];
        AppState { models, registry: Registry::new() }
    }

    /// The shared metrics registry (exposed at `GET /metrics`).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The served model registry.
    #[must_use]
    pub fn models(&self) -> &[ServedModel] {
        &self.models
    }

    fn model(&self, name: &str) -> Option<&ServedModel> {
        self.models.iter().find(|m| m.name == name)
    }

    /// Routes one request to its handler, records per-endpoint counters
    /// and latency, and returns the response. `deadline` bounds the
    /// handler's work (simulations stop and answer 504 when it passes).
    pub fn dispatch(&self, req: &Request, deadline: Instant) -> Response {
        let started = Instant::now();
        let (endpoint, response) = self.route(req, deadline);
        let status = response.status.to_string();
        self.registry
            .counter(
                "lisa_serve_requests_total",
                "HTTP requests served, by endpoint and status.",
                &[("endpoint", endpoint), ("status", &status)],
            )
            .inc();
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.registry
            .histogram(
                "lisa_serve_request_duration_us",
                "Request handling latency in microseconds.",
                &[("endpoint", endpoint)],
            )
            .observe(micros);
        response
    }

    /// The route table. Returns the endpoint label used for metrics
    /// (unknown paths share one label so they can't explode cardinality).
    fn route(&self, req: &Request, deadline: Instant) -> (&'static str, Response) {
        match (req.method.as_str(), req.target.split('?').next().unwrap_or("")) {
            ("GET", "/healthz") => ("/healthz", Response::text(200, "ok\n")),
            ("GET", "/metrics") => {
                ("/metrics", Response::text(200, self.registry.snapshot().to_prometheus()))
            }
            ("GET", "/v1/models") => ("/v1/models", self.handle_models()),
            ("POST", "/v1/assemble") => ("/v1/assemble", self.handle_assemble(&req.body)),
            ("POST", "/v1/simulate") => ("/v1/simulate", self.handle_simulate(&req.body, deadline)),
            ("POST", "/v1/batch") => ("/v1/batch", self.handle_batch(&req.body)),
            (
                _,
                "/healthz" | "/metrics" | "/v1/models" | "/v1/assemble" | "/v1/simulate"
                | "/v1/batch",
            ) => ("method_not_allowed", Response::json(405, api::error_body("method not allowed"))),
            _ => ("not_found", Response::json(404, api::error_body("no such route"))),
        }
    }

    fn handle_models(&self) -> Response {
        let mut body = String::from("{\"models\": [");
        for (i, m) in self.models.iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&format!(
                "{{\"name\": \"{}\", \"operations\": {}, \"resources\": {}, \
                 \"program_memory\": \"{}\", \"halt_flag\": \"{}\"}}",
                m.name,
                m.model.operations().len(),
                m.model.resources().len(),
                m.program_memory,
                m.halt_flag
            ));
        }
        body.push_str("]}");
        Response::json(200, body)
    }

    fn handle_assemble(&self, body: &[u8]) -> Response {
        let req = match AssembleRequest::from_json(body) {
            Ok(r) => r,
            Err(e) => return Response::json(400, api::error_body(&e)),
        };
        let Some(served) = self.model(&req.model) else {
            return Response::json(404, api::error_body(&format!("unknown model `{}`", req.model)));
        };
        match served.assembler().assemble(&req.program) {
            Ok(program) => Response::json(
                200,
                api::assemble_body(program.origin, &program.words, &program.listing),
            ),
            Err(e) => Response::json(422, api::error_body(&e.to_string())),
        }
    }

    fn handle_simulate(&self, body: &[u8], deadline: Instant) -> Response {
        let req = match SimulateRequest::from_json(body) {
            Ok(r) => r,
            Err(e) => return Response::json(400, api::error_body(&e)),
        };
        let Some(served) = self.model(&req.model) else {
            return Response::json(404, api::error_body(&format!("unknown model `{}`", req.model)));
        };
        let mode = match req.mode.as_str() {
            "interp" | "interpretive" => SimMode::Interpretive,
            "compiled" => SimMode::Compiled,
            other => {
                return Response::json(400, api::error_body(&format!("unknown mode `{other}`")))
            }
        };

        let program = match served.assembler().assemble(&req.program) {
            Ok(p) => p,
            Err(e) => return Response::json(422, api::error_body(&e.to_string())),
        };
        let run = simulate(
            served,
            mode,
            &program.words,
            program.origin,
            req.max_cycles,
            &req.dump,
            deadline,
        );
        match run {
            Ok(outcome) => Response::json(200, api::simulate_body(&outcome)),
            Err(SimulateError::Deadline) => {
                Response::json(504, api::error_body("deadline exceeded"))
            }
            Err(SimulateError::Sim(msg)) => Response::json(422, api::error_body(&msg)),
        }
    }

    fn handle_batch(&self, body: &[u8]) -> Response {
        let req = match BatchRequest::from_json(body) {
            Ok(r) => r,
            Err(e) => return Response::json(400, api::error_body(&e)),
        };
        let modes: &[SimMode] = match req.mode.as_str() {
            "interp" | "interpretive" => &[SimMode::Interpretive],
            "compiled" => &[SimMode::Compiled],
            "both" => &[SimMode::Interpretive, SimMode::Compiled],
            other => {
                return Response::json(400, api::error_body(&format!("unknown mode `{other}`")))
            }
        };
        let started = Instant::now();
        let matrix = match full_matrix() {
            Ok(m) => m,
            Err(e) => return Response::json(500, api::error_body(&e.to_string())),
        };
        let scenarios: Vec<_> = matrix
            .iter()
            .flat_map(|(wb, kernels)| {
                kernels
                    .iter()
                    .flat_map(move |k| modes.iter().map(move |&mode| wb.scenario(k, mode)))
            })
            .collect();
        let observer = BatchObserver::new().with_metrics(&self.registry);
        let report = BatchRunner::new(req.workers).run_observed(&scenarios, &observer);
        let elapsed = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        Response::json(
            200,
            api::batch_body(
                report.jobs.len(),
                report.failures().len(),
                report.total_cycles(),
                elapsed,
            ),
        )
    }
}

impl Default for AppState {
    fn default() -> AppState {
        AppState::new()
    }
}

enum SimulateError {
    Deadline,
    Sim(String),
}

/// Runs one simulation with both a cycle budget and a wall-clock
/// deadline. The deadline is checked every 1024 control steps so the
/// hot loop stays free of syscalls.
#[allow(clippy::too_many_arguments)]
fn simulate(
    served: &ServedModel,
    mode: SimMode,
    words: &[u128],
    origin: u64,
    max_cycles: u64,
    dumps: &[(String, usize)],
    deadline: Instant,
) -> Result<SimulateOutcome, SimulateError> {
    let sim_err = |e: SimError| SimulateError::Sim(e.to_string());
    let mut sim = Simulator::new(&served.model, mode).map_err(sim_err)?;
    let pmem = served
        .model
        .resource_by_name(served.program_memory)
        .ok_or_else(|| SimulateError::Sim(format!("no `{}` memory", served.program_memory)))?
        .clone();
    for (i, &word) in words.iter().enumerate() {
        let value = lisa_bits::Bits::from_u128_wrapped(pmem.ty.width(), word);
        sim.state_mut().write(&pmem, &[origin as i64 + i as i64], value).map_err(sim_err)?;
    }
    if mode == SimMode::Compiled {
        sim.predecode_program_memory();
    }
    let halt = served
        .model
        .resource_by_name(served.halt_flag)
        .ok_or_else(|| SimulateError::Sim(format!("no `{}` flag", served.halt_flag)))?
        .clone();

    let mut ticks: u32 = 0;
    let mut timed_out = false;
    let outcome = sim.run_until(
        |st| {
            if st.read_int(&halt, &[]).unwrap_or(0) != 0 {
                return true;
            }
            ticks = ticks.wrapping_add(1);
            if ticks.is_multiple_of(1024) && Instant::now() >= deadline {
                timed_out = true;
                return true;
            }
            false
        },
        max_cycles,
    );
    let (cycles, halted) = match outcome {
        Ok(cycles) if timed_out => (cycles, false),
        Ok(cycles) => (cycles, true),
        Err(SimError::StepLimit { .. }) => (max_cycles, false),
        Err(e) => return Err(sim_err(e)),
    };
    if timed_out {
        return Err(SimulateError::Deadline);
    }
    let mut dump = Vec::new();
    for (name, count) in dumps {
        let res = served
            .model
            .resource_by_name(name)
            .ok_or_else(|| SimulateError::Sim(format!("unknown dump resource `{name}`")))?;
        let values = if res.is_array() {
            let base = res.dims.first().map_or(0, |d| d.base()) as i64;
            (0..(*count).min(res.element_count() as usize))
                .map(|i| sim.state().read_int(res, &[base + i as i64]).map_err(sim_err))
                .collect::<Result<Vec<_>, _>>()?
        } else {
            vec![sim.state().read_int(res, &[]).map_err(sim_err)?]
        };
        dump.push((name.clone(), values));
    }
    Ok(SimulateOutcome {
        cycles,
        halted,
        instructions_retired: sim.stats().instructions_retired,
        state_digest: sim.state().digest(),
        dump,
    })
}

/// A far-future deadline for contexts without a per-request timeout
/// (tests, the bench client's in-process dispatch).
#[must_use]
pub fn no_deadline() -> Instant {
    Instant::now() + Duration::from_secs(86_400)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(state: &AppState, target: &str) -> Response {
        let req = Request {
            method: "GET".to_owned(),
            target: target.to_owned(),
            http11: true,
            headers: Vec::new(),
            body: Vec::new(),
        };
        state.dispatch(&req, no_deadline())
    }

    fn post(state: &AppState, target: &str, body: &str) -> Response {
        let req = Request {
            method: "POST".to_owned(),
            target: target.to_owned(),
            http11: true,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        };
        state.dispatch(&req, no_deadline())
    }

    #[test]
    fn healthz_and_models_respond() {
        let state = AppState::new();
        assert_eq!(get(&state, "/healthz").status, 200);
        let models = get(&state, "/v1/models");
        assert_eq!(models.status, 200);
        let text = String::from_utf8(models.body).unwrap();
        for name in ["tinyrisc", "accu16", "scalar2", "vliw62"] {
            assert!(text.contains(name), "{text}");
        }
    }

    #[test]
    fn assemble_and_simulate_happy_path() {
        let state = AppState::new();
        let resp = post(
            &state,
            "/v1/assemble",
            r#"{"model": "tinyrisc", "program": "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n"}"#,
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"words\""), "{text}");

        let resp = post(
            &state,
            "/v1/simulate",
            r#"{"model": "tinyrisc", "program": "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n"}"#,
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"halted\": true"), "{text}");
    }

    #[test]
    fn interp_and_compiled_agree_on_the_digest() {
        let state = AppState::new();
        let body = |mode: &str| {
            format!(
                r#"{{"model": "tinyrisc", "program": "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n", "mode": "{mode}"}}"#
            )
        };
        let a = post(&state, "/v1/simulate", &body("interp"));
        let b = post(&state, "/v1/simulate", &body("compiled"));
        assert_eq!(a.status, 200);
        let digest = |r: &Response| {
            let text = String::from_utf8(r.body.clone()).unwrap();
            let key = "\"state_digest\": ";
            let at = text.find(key).unwrap() + key.len();
            text[at..].split(',').next().unwrap().to_owned()
        };
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn unknown_model_is_404_and_bad_asm_is_422() {
        let state = AppState::new();
        let resp = post(&state, "/v1/assemble", r#"{"model": "z80", "program": "NOP"}"#);
        assert_eq!(resp.status, 404);
        let resp =
            post(&state, "/v1/assemble", r#"{"model": "tinyrisc", "program": "FROBNICATE R1"}"#);
        assert_eq!(resp.status, 422);
        let resp = post(&state, "/v1/simulate", r#"{"broken": true}"#);
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn routes_404_and_405() {
        let state = AppState::new();
        assert_eq!(get(&state, "/nope").status, 404);
        assert_eq!(post(&state, "/healthz", "").status, 405);
        assert_eq!(get(&state, "/v1/simulate").status, 405);
    }

    #[test]
    fn budget_exhaustion_reports_halted_false() {
        let state = AppState::new();
        // An infinite loop: branch to self.
        let resp = post(
            &state,
            "/v1/simulate",
            r#"{"model": "tinyrisc", "program": "loop: JMP loop\n", "max_cycles": 50}"#,
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"halted\": false"), "{text}");
        assert!(text.contains("\"cycles\": 50"), "{text}");
    }

    #[test]
    fn a_passed_deadline_is_a_504() {
        let state = AppState::new();
        let req = Request {
            method: "POST".to_owned(),
            target: "/v1/simulate".to_owned(),
            http11: true,
            headers: Vec::new(),
            body:
                br#"{"model": "tinyrisc", "program": "loop: JMP loop\n", "max_cycles": 100000000}"#
                    .to_vec(),
        };
        let resp = state.dispatch(&req, Instant::now());
        assert_eq!(resp.status, 504, "{}", String::from_utf8_lossy(&resp.body));
    }

    #[test]
    fn metrics_count_dispatches_per_endpoint() {
        use lisa_metrics::{MetricKey, MetricValue};

        let state = AppState::new();
        for _ in 0..3 {
            assert_eq!(get(&state, "/healthz").status, 200);
        }
        assert_eq!(get(&state, "/nope").status, 404);
        let snap = state.registry().snapshot();
        let key = MetricKey::new(
            "lisa_serve_requests_total",
            &[("endpoint", "/healthz"), ("status", "200")],
        );
        assert_eq!(snap.metrics.get(&key), Some(&MetricValue::Counter(3)));
        let key = MetricKey::new(
            "lisa_serve_requests_total",
            &[("endpoint", "not_found"), ("status", "404")],
        );
        assert_eq!(snap.metrics.get(&key), Some(&MetricValue::Counter(1)));
        // The /metrics endpoint itself gets counted and timed.
        let text = String::from_utf8(get(&state, "/metrics").body).unwrap();
        assert!(text.contains("lisa_serve_request_duration_us_bucket"), "{text}");
    }
}

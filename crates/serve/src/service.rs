//! Request routing and the endpoint handlers.
//!
//! [`AppState`] owns everything a request needs — the builtin model
//! registry (each model parsed and analysed once at startup, the way
//! the paper generates its tool suite once per description) and the
//! shared metrics [`Registry`]. [`AppState::dispatch`] is a pure
//! `Request -> Response` function over that state, so the whole request
//! path is testable without a socket.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lisa_asm::Assembler;
use lisa_conform::{publish_fuzz, CoverageMap, Fault, FuzzConfig, Fuzzer, Reproducer};
use lisa_core::Model;
use lisa_exec::{BatchObserver, BatchRunner};
use lisa_metrics::Registry;
use lisa_models::kernels::full_matrix;
use lisa_models::{accu16, scalar2, tinyrisc, vliw62, Workbench};
use lisa_sim::{publish_arch, ArchProfile, ProbeSpec, SimError, SimMode, Simulator, StopReason};
use lisa_spans::{export, SpanKind, SpanRecorder, SpanScope};

use crate::api::{
    self, AssembleRequest, BatchRequest, FuzzRequest, SimulateOutcome, SimulateRequest,
};
use crate::http::{Request, Response};

/// One builtin model, ready to serve requests.
pub struct ServedModel {
    /// Registry name (`tinyrisc`, `accu16`, `scalar2`, `vliw62`).
    pub name: &'static str,
    /// The analysed model database.
    pub model: Model,
    /// Program-memory resource programs load into.
    pub program_memory: &'static str,
    /// Halt-flag resource.
    pub halt_flag: &'static str,
    /// VLIW fetch-packet size, when packet assembly applies.
    pub packet: Option<usize>,
    /// Conformance workbench for `/v1/fuzz` (its own model instance,
    /// wired to the same memories and halt flag).
    pub workbench: Workbench,
}

impl ServedModel {
    fn assembler(&self) -> Assembler<'_> {
        match self.packet {
            Some(n) => Assembler::with_packet(&self.model, n, 1),
            None => Assembler::new(&self.model),
        }
    }
}

/// Span-ring capacity for the always-on request tracer: a flight
/// recorder, large enough to hold several hundred request trees.
const SPAN_CAPACITY: usize = 16 * 1024;

/// Upper bound on `seed_count` per `/v1/fuzz` request — larger ranges
/// belong to a coordinator fanning out chunks, not one request.
const MAX_FUZZ_PROGRAMS: u64 = 100_000;

/// Upper bound on `/v1/fuzz` `max_len` (matches the generator's image
/// ceiling).
const MAX_FUZZ_LEN: u64 = 2048;

/// Upper bound on `/v1/fuzz` `max_cycles`.
const MAX_FUZZ_CYCLES: u64 = 10_000_000;

/// Shared service state: models + metrics + the span recorder.
pub struct AppState {
    models: Vec<ServedModel>,
    registry: Registry,
    spans: Arc<SpanRecorder>,
    /// Span-ring drop count already published to the registry, so each
    /// `/metrics` scrape adds only the delta.
    spans_dropped_published: AtomicU64,
    /// Architectural profile merged across every `/v1/simulate` run,
    /// served at `GET /v1/debug/arch`.
    arch: Mutex<ArchProfile>,
    /// Per-model coding-tree coverage merged across every `/v1/fuzz`
    /// request, so the `lisa_fuzz_paths_covered` gauge is monotone.
    fuzz_coverage: Mutex<BTreeMap<&'static str, CoverageMap>>,
    /// Process start, for the `lisa_uptime_seconds` gauge.
    started: Instant,
}

impl AppState {
    /// Builds every builtin model and an empty metrics registry.
    ///
    /// # Panics
    ///
    /// Panics if a bundled model fails to build (a bug, covered by
    /// model tests).
    #[must_use]
    pub fn new() -> AppState {
        let models = vec![
            ServedModel {
                name: "tinyrisc",
                model: Model::from_source(tinyrisc::SOURCE).expect("tinyrisc builds"),
                program_memory: "pmem",
                halt_flag: "halt",
                packet: None,
                workbench: tinyrisc::workbench().expect("tinyrisc workbench builds"),
            },
            ServedModel {
                name: "accu16",
                model: Model::from_source(accu16::SOURCE).expect("accu16 builds"),
                program_memory: "prog_mem",
                halt_flag: "halt",
                packet: None,
                workbench: accu16::workbench().expect("accu16 workbench builds"),
            },
            ServedModel {
                name: "scalar2",
                model: Model::from_source(scalar2::SOURCE).expect("scalar2 builds"),
                program_memory: "pmem",
                halt_flag: "halt",
                packet: None,
                workbench: scalar2::workbench().expect("scalar2 workbench builds"),
            },
            ServedModel {
                name: "vliw62",
                model: Model::from_source(vliw62::SOURCE).expect("vliw62 builds"),
                program_memory: "pmem",
                halt_flag: "halt",
                packet: Some(vliw62::FETCH_PACKET),
                workbench: vliw62::workbench().expect("vliw62 workbench builds"),
            },
        ];
        let registry = Registry::new();
        // The one place every exposition carries a version signal.
        registry
            .gauge(
                "lisa_build_info",
                "Build information; the value is always 1.",
                &[("version", env!("CARGO_PKG_VERSION"))],
            )
            .set(1);
        let spans = Arc::new(SpanRecorder::new(SPAN_CAPACITY));
        spans.set_enabled(true);
        AppState {
            models,
            registry,
            spans,
            spans_dropped_published: AtomicU64::new(0),
            arch: Mutex::new(ArchProfile::new()),
            fuzz_coverage: Mutex::new(BTreeMap::new()),
            started: Instant::now(),
        }
    }

    /// The shared metrics registry (exposed at `GET /metrics`).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shared span recorder (exposed at `GET /v1/debug/spans`).
    /// Enabled by default; disable with
    /// [`SpanRecorder::set_enabled`]`(false)` to shrink the request path
    /// to one branch per would-be span.
    #[must_use]
    pub fn spans(&self) -> &Arc<SpanRecorder> {
        &self.spans
    }

    /// The served model registry.
    #[must_use]
    pub fn models(&self) -> &[ServedModel] {
        &self.models
    }

    fn model(&self, name: &str) -> Option<&ServedModel> {
        self.models.iter().find(|m| m.name == name)
    }

    /// Routes one request to its handler, records per-endpoint counters
    /// and latency, and returns the response. `deadline` bounds the
    /// handler's work (simulations stop and answer 504 when it passes).
    pub fn dispatch(&self, req: &Request, deadline: Instant) -> Response {
        self.dispatch_spanned(req, deadline, None)
    }

    /// [`AppState::dispatch`] with a span context: routing and the
    /// handler's phases (`assemble`, `run`, `serialize`) are recorded as
    /// children of `spans`'s parent (the connection's `request` span).
    pub fn dispatch_spanned(
        &self,
        req: &Request,
        deadline: Instant,
        spans: Option<&SpanScope>,
    ) -> Response {
        let started = Instant::now();
        let (endpoint, response) = match spans {
            Some(scope) => {
                let route = scope.start(SpanKind::Route);
                let route_scope = scope.child(route.id());
                self.route(req, deadline, Some(&route_scope))
            }
            None => self.route(req, deadline, None),
        };
        let status = response.status.to_string();
        self.registry
            .counter(
                "lisa_serve_requests_total",
                "HTTP requests served, by endpoint and status.",
                &[("endpoint", endpoint), ("status", &status)],
            )
            .inc();
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.registry
            .histogram(
                "lisa_serve_request_duration_us",
                "Request handling latency in microseconds.",
                &[("endpoint", endpoint)],
            )
            .observe(micros);
        response
    }

    /// The route table. Returns the endpoint label used for metrics
    /// (unknown paths share one label so they can't explode cardinality).
    fn route(
        &self,
        req: &Request,
        deadline: Instant,
        spans: Option<&SpanScope>,
    ) -> (&'static str, Response) {
        match (req.method.as_str(), req.target.split('?').next().unwrap_or("")) {
            ("GET", "/healthz") => ("/healthz", Response::text(200, "ok\n")),
            ("GET", "/metrics") => ("/metrics", self.handle_metrics()),
            ("GET", "/v1/models") => ("/v1/models", self.handle_models()),
            ("GET", "/v1/debug/spans") => ("/v1/debug/spans", self.handle_spans(&req.target)),
            ("GET", "/v1/debug/arch") => ("/v1/debug/arch", self.handle_arch()),
            ("POST", "/v1/assemble") => ("/v1/assemble", self.handle_assemble(&req.body)),
            ("POST", "/v1/simulate") => {
                ("/v1/simulate", self.handle_simulate(&req.body, deadline, spans))
            }
            ("POST", "/v1/batch") => ("/v1/batch", self.handle_batch(&req.body, spans)),
            ("POST", "/v1/fuzz") => ("/v1/fuzz", self.handle_fuzz(&req.body, deadline)),
            (
                _,
                "/healthz" | "/metrics" | "/v1/models" | "/v1/debug/spans" | "/v1/debug/arch"
                | "/v1/assemble" | "/v1/simulate" | "/v1/batch" | "/v1/fuzz",
            ) => ("method_not_allowed", Response::json(405, api::error_body("method not allowed"))),
            _ => ("not_found", Response::json(404, api::error_body("no such route"))),
        }
    }

    /// `GET /metrics`: the Prometheus exposition. Span-ring overflow is
    /// folded into the registry right before the snapshot, so the scrape
    /// that reports loss is never stale; uptime and the scrape counter
    /// are refreshed the same way.
    fn handle_metrics(&self) -> Response {
        self.registry
            .counter("lisa_metrics_scrapes_total", "Scrapes of the /metrics endpoint.", &[])
            .inc();
        let uptime = i64::try_from(self.started.elapsed().as_secs()).unwrap_or(i64::MAX);
        self.registry
            .gauge("lisa_uptime_seconds", "Seconds since the service started.", &[])
            .set(uptime);
        let dropped = self.spans.dropped();
        let published = self.spans_dropped_published.swap(dropped, Ordering::Relaxed);
        let delta = dropped.saturating_sub(published);
        if delta > 0 {
            self.registry
                .counter(
                    "lisa_spans_dropped_total",
                    "Spans overwritten because a span ring wrapped.",
                    &[],
                )
                .add(delta);
        }
        Response::prometheus(self.registry.snapshot().to_prometheus())
    }

    /// `GET /v1/debug/spans?limit=N&format=chrome|json`: the recorder's
    /// current contents, newest-biased. The default JSON object carries
    /// raw-nanosecond spans plus the drop count; `format=chrome` returns
    /// a Chrome trace-event array that loads directly in Perfetto.
    fn handle_spans(&self, target: &str) -> Response {
        let query = target.split_once('?').map_or("", |(_, q)| q);
        let mut limit = 2048usize;
        let mut format = "json";
        for pair in query.split('&') {
            match pair.split_once('=') {
                Some(("limit", v)) => match v.parse::<usize>() {
                    Ok(n) => limit = n,
                    Err(_) => {
                        return Response::json(400, api::error_body("bad `limit` value"));
                    }
                },
                Some(("format", v)) => format = v,
                _ => {}
            }
        }
        let mut spans = self.spans.collect();
        if spans.len() > limit {
            // Keep the newest spans (collect() sorts by start time).
            spans.drain(..spans.len() - limit);
        }
        match format {
            "chrome" => Response::json(200, export::to_chrome_trace(&spans)),
            "json" => {
                let mut body = format!(
                    "{{\"enabled\": {}, \"dropped\": {}, \"spans\": [",
                    self.spans.is_enabled(),
                    self.spans.dropped()
                );
                for (i, s) in spans.iter().enumerate() {
                    if i > 0 {
                        body.push_str(", ");
                    }
                    body.push_str(&export::span_json(s));
                }
                body.push_str("]}");
                Response::json(200, body)
            }
            _ => Response::json(400, api::error_body("unknown `format` (json|chrome)")),
        }
    }

    /// `GET /v1/debug/arch`: the architectural profile merged across
    /// every `/v1/simulate` run since startup.
    fn handle_arch(&self) -> Response {
        let arch = self.arch.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Response::json(200, arch.to_json())
    }

    fn handle_models(&self) -> Response {
        let mut body = String::from("{\"models\": [");
        for (i, m) in self.models.iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&format!(
                "{{\"name\": \"{}\", \"operations\": {}, \"resources\": {}, \
                 \"program_memory\": \"{}\", \"halt_flag\": \"{}\"}}",
                m.name,
                m.model.operations().len(),
                m.model.resources().len(),
                m.program_memory,
                m.halt_flag
            ));
        }
        body.push_str("]}");
        Response::json(200, body)
    }

    fn handle_assemble(&self, body: &[u8]) -> Response {
        let req = match AssembleRequest::from_json(body) {
            Ok(r) => r,
            Err(e) => return Response::json(400, api::error_body(&e)),
        };
        let Some(served) = self.model(&req.model) else {
            return Response::json(404, api::error_body(&format!("unknown model `{}`", req.model)));
        };
        match served.assembler().assemble(&req.program) {
            Ok(program) => Response::json(
                200,
                api::assemble_body(program.origin, &program.words, &program.listing),
            ),
            Err(e) => Response::json(422, api::error_body(&e.to_string())),
        }
    }

    fn handle_simulate(
        &self,
        body: &[u8],
        deadline: Instant,
        spans: Option<&SpanScope>,
    ) -> Response {
        let req = match SimulateRequest::from_json(body) {
            Ok(r) => r,
            Err(e) => return Response::json(400, api::error_body(&e)),
        };
        let Some(served) = self.model(&req.model) else {
            return Response::json(404, api::error_body(&format!("unknown model `{}`", req.model)));
        };
        let mode = match req.mode.as_str() {
            "interp" | "interpretive" => SimMode::Interpretive,
            "compiled" => SimMode::Compiled,
            "ops" => SimMode::Ops,
            other => {
                // 422, not 400: the request is well-formed JSON with a
                // semantically invalid field value.
                return Response::json(
                    422,
                    api::error_body(&format!("unknown mode `{other}` (interp|compiled|ops)")),
                );
            }
        };

        let program = {
            let _span = spans.map(|s| s.start(SpanKind::Assemble));
            match served.assembler().assemble(&req.program) {
                Ok(p) => p,
                Err(e) => return Response::json(422, api::error_body(&e.to_string())),
            }
        };
        let run = {
            let span = spans.map(|s| s.start(SpanKind::Run));
            // The simulator's phases (predecode, cycle chunks) nest
            // under the run span.
            let run_scope = match (spans, &span) {
                (Some(s), Some(g)) => Some(s.child(g.id())),
                _ => None,
            };
            simulate(
                served,
                mode,
                &program.words,
                program.origin,
                req.max_cycles,
                &req.dump,
                &req.probes,
                deadline,
                run_scope.as_ref(),
            )
        };
        match run {
            Ok((outcome, profile)) => {
                let _span = spans.map(|s| s.start(SpanKind::Serialize));
                {
                    let mut arch =
                        self.arch.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    arch.merge(&profile);
                    publish_arch(&self.registry, &arch);
                }
                Response::json(200, api::simulate_body(&outcome))
            }
            Err(SimulateError::Deadline) => {
                Response::json(504, api::error_body("deadline exceeded"))
            }
            Err(SimulateError::Sim(msg)) => Response::json(422, api::error_body(&msg)),
        }
    }

    /// `POST /v1/fuzz`: run the five-oracle conformance fuzzer over one
    /// iteration range. The request deadline is polled between
    /// iterations; an expired deadline answers 504 rather than returning
    /// a partial report, so fleet coordinators never merge truncated
    /// coverage silently. Self-check requests (deliberate fault
    /// injection) skip the `lisa_fuzz_*` metrics and the merged coverage
    /// so they cannot pollute real conformance data.
    fn handle_fuzz(&self, body: &[u8], deadline: Instant) -> Response {
        let req = match FuzzRequest::from_json(body) {
            Ok(r) => r,
            Err(e) => return Response::json(400, api::error_body(&e)),
        };
        let Some(served) = self.model(&req.model) else {
            return Response::json(404, api::error_body(&format!("unknown model `{}`", req.model)));
        };
        if req.seed_count == 0 || req.seed_count > MAX_FUZZ_PROGRAMS {
            return Response::json(
                422,
                api::error_body(&format!(
                    "field `seed_count` must be between 1 and {MAX_FUZZ_PROGRAMS}"
                )),
            );
        }
        if req.seed_start.checked_add(req.seed_count).is_none() {
            return Response::json(422, api::error_body("seed range overflows"));
        }
        if req.max_len == 0 || req.max_len > MAX_FUZZ_LEN {
            return Response::json(
                422,
                api::error_body(&format!("field `max_len` must be between 1 and {MAX_FUZZ_LEN}")),
            );
        }
        if req.max_cycles == 0 || req.max_cycles > MAX_FUZZ_CYCLES {
            return Response::json(
                422,
                api::error_body(&format!(
                    "field `max_cycles` must be between 1 and {MAX_FUZZ_CYCLES}"
                )),
            );
        }

        let config = FuzzConfig {
            seed: req.seed,
            start: req.seed_start,
            iters: req.seed_count,
            max_len: req.max_len as usize,
            max_cycles: req.max_cycles,
            fault: req.self_check.then_some(Fault { at_cycle: 0 }),
        };
        let fuzzer = match Fuzzer::new(&served.workbench, config) {
            Ok(f) => f,
            Err(e) => return Response::json(500, api::error_body(&e.to_string())),
        };
        let report = fuzzer.run_guarded(|| Instant::now() >= deadline);
        if report.stopped {
            return Response::json(504, api::error_body("deadline exceeded"));
        }
        let reproducers: Vec<Reproducer> =
            report.failure.iter().map(|f| fuzzer.reproducer(served.name, f)).collect();

        if req.self_check {
            let caught = report.failure.is_some();
            if !caught {
                return Response::json(
                    500,
                    api::error_body("self_check: injected backend fault was NOT caught"),
                );
            }
            return Response::json(
                200,
                api::fuzz_body(&req, &report, &reproducers, Some(true), None),
            );
        }

        let merged_paths = {
            let mut merged =
                self.fuzz_coverage.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let entry = merged.entry(served.name).or_default();
            entry.merge(&report.coverage);
            entry.len()
        };
        publish_fuzz(&self.registry, served.name, &report, merged_paths);
        let distilled = if req.distill { Some(fuzzer.distill()) } else { None };
        Response::json(200, api::fuzz_body(&req, &report, &reproducers, None, distilled.as_ref()))
    }

    fn handle_batch(&self, body: &[u8], spans: Option<&SpanScope>) -> Response {
        let req = match BatchRequest::from_json(body) {
            Ok(r) => r,
            Err(e) => return Response::json(400, api::error_body(&e)),
        };
        let modes: &[SimMode] = match req.mode.as_str() {
            "interp" | "interpretive" => &[SimMode::Interpretive],
            "compiled" => &[SimMode::Compiled],
            "ops" => &[SimMode::Ops],
            "both" => &[SimMode::Interpretive, SimMode::Compiled],
            "all" => &[SimMode::Interpretive, SimMode::Compiled, SimMode::Ops],
            other => {
                return Response::json(
                    422,
                    api::error_body(&format!(
                        "unknown mode `{other}` (interp|compiled|ops|both|all)"
                    )),
                );
            }
        };
        let started = Instant::now();
        let matrix = match full_matrix() {
            Ok(m) => m,
            Err(e) => return Response::json(500, api::error_body(&e.to_string())),
        };
        let scenarios: Vec<_> = matrix
            .iter()
            .flat_map(|(wb, kernels)| {
                kernels
                    .iter()
                    .flat_map(move |k| modes.iter().map(move |&mode| wb.scenario(k, mode)))
            })
            .collect();
        let mut observer = BatchObserver::new().with_metrics(&self.registry);
        if let Some(scope) = spans {
            observer = observer.with_spans(scope.clone());
        }
        let report = BatchRunner::new(req.workers).run_observed(&scenarios, &observer);
        let elapsed = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        Response::json(
            200,
            api::batch_body(
                report.jobs.len(),
                report.failures().len(),
                report.total_cycles(),
                elapsed,
            ),
        )
    }
}

impl Default for AppState {
    fn default() -> AppState {
        AppState::new()
    }
}

enum SimulateError {
    Deadline,
    Sim(String),
}

/// Runs one simulation with both a cycle budget and a wall-clock
/// deadline. The deadline is checked every 1024 control steps so the
/// hot loop stays free of syscalls. Probes from the request are armed
/// before the run; the architectural profile is always collected so the
/// service's merged `/v1/debug/arch` view covers every run.
#[allow(clippy::too_many_arguments)]
fn simulate(
    served: &ServedModel,
    mode: SimMode,
    words: &[u128],
    origin: u64,
    max_cycles: u64,
    dumps: &[(String, usize)],
    probes: &[String],
    deadline: Instant,
    spans: Option<&SpanScope>,
) -> Result<(SimulateOutcome, ArchProfile), SimulateError> {
    let sim_err = |e: SimError| SimulateError::Sim(e.to_string());
    let mut sim = Simulator::new(&served.model, mode).map_err(sim_err)?;
    sim.set_spans(spans.cloned());
    if !probes.is_empty() {
        let spec =
            ProbeSpec::parse(&probes.join("; ")).map_err(|e| SimulateError::Sim(e.to_string()))?;
        let set = spec.compile(&served.model).map_err(|e| SimulateError::Sim(e.to_string()))?;
        sim.set_probes(set);
    }
    sim.enable_arch_profile();
    let pmem = served
        .model
        .resource_by_name(served.program_memory)
        .ok_or_else(|| SimulateError::Sim(format!("no `{}` memory", served.program_memory)))?
        .clone();
    for (i, &word) in words.iter().enumerate() {
        let value = lisa_bits::Bits::from_u128_wrapped(pmem.ty.width(), word);
        sim.state_mut().write(&pmem, &[origin as i64 + i as i64], value).map_err(sim_err)?;
    }
    if mode != SimMode::Interpretive {
        sim.predecode_program_memory();
    }
    let halt = served
        .model
        .resource_by_name(served.halt_flag)
        .ok_or_else(|| SimulateError::Sim(format!("no `{}` flag", served.halt_flag)))?
        .clone();

    let mut ticks: u32 = 0;
    let mut timed_out = false;
    let outcome = sim.run_until(
        |st| {
            if st.read_int(&halt, &[]).unwrap_or(0) != 0 {
                return true;
            }
            ticks = ticks.wrapping_add(1);
            if ticks.is_multiple_of(1024) && Instant::now() >= deadline {
                timed_out = true;
                return true;
            }
            false
        },
        max_cycles,
    );
    let (cycles, halted, stop) = match outcome {
        Ok(out) if timed_out => (out.cycles, false, StopReason::Halted),
        Ok(out) => (out.cycles, out.reason == StopReason::Halted, out.reason),
        Err(SimError::StepLimit { .. }) => (max_cycles, false, StopReason::Halted),
        Err(e) => return Err(sim_err(e)),
    };
    if timed_out {
        return Err(SimulateError::Deadline);
    }
    let report = sim.probe_report();
    let breakpoint = match stop {
        StopReason::Breakpoint { probe, pc } => {
            let label = report
                .get(probe as usize)
                .map_or_else(|| format!("probe #{probe}"), |(label, _)| label.clone());
            Some((label, pc))
        }
        StopReason::Halted => None,
    };
    let mut dump = Vec::new();
    for (name, count) in dumps {
        let res = served
            .model
            .resource_by_name(name)
            .ok_or_else(|| SimulateError::Sim(format!("unknown dump resource `{name}`")))?;
        let values = if res.is_array() {
            let base = res.dims.first().map_or(0, |d| d.base()) as i64;
            (0..(*count).min(res.element_count() as usize))
                .map(|i| sim.state().read_int(res, &[base + i as i64]).map_err(sim_err))
                .collect::<Result<Vec<_>, _>>()?
        } else {
            vec![sim.state().read_int(res, &[]).map_err(sim_err)?]
        };
        dump.push((name.clone(), values));
    }
    let profile = sim.arch_profile().unwrap_or_default();
    Ok((
        SimulateOutcome {
            cycles,
            halted,
            instructions_retired: sim.stats().instructions_retired,
            state_digest: sim.state().digest(),
            dump,
            probes: report,
            breakpoint,
        },
        profile,
    ))
}

/// A far-future deadline for contexts without a per-request timeout
/// (tests, the bench client's in-process dispatch).
#[must_use]
pub fn no_deadline() -> Instant {
    Instant::now() + Duration::from_secs(86_400)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(state: &AppState, target: &str) -> Response {
        let req = Request {
            method: "GET".to_owned(),
            target: target.to_owned(),
            http11: true,
            headers: Vec::new(),
            body: Vec::new(),
        };
        state.dispatch(&req, no_deadline())
    }

    fn post(state: &AppState, target: &str, body: &str) -> Response {
        let req = Request {
            method: "POST".to_owned(),
            target: target.to_owned(),
            http11: true,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        };
        state.dispatch(&req, no_deadline())
    }

    #[test]
    fn healthz_and_models_respond() {
        let state = AppState::new();
        assert_eq!(get(&state, "/healthz").status, 200);
        let models = get(&state, "/v1/models");
        assert_eq!(models.status, 200);
        let text = String::from_utf8(models.body).unwrap();
        for name in ["tinyrisc", "accu16", "scalar2", "vliw62"] {
            assert!(text.contains(name), "{text}");
        }
    }

    #[test]
    fn assemble_and_simulate_happy_path() {
        let state = AppState::new();
        let resp = post(
            &state,
            "/v1/assemble",
            r#"{"model": "tinyrisc", "program": "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n"}"#,
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"words\""), "{text}");

        let resp = post(
            &state,
            "/v1/simulate",
            r#"{"model": "tinyrisc", "program": "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n"}"#,
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"halted\": true"), "{text}");
    }

    #[test]
    fn interp_and_compiled_agree_on_the_digest() {
        let state = AppState::new();
        let body = |mode: &str| {
            format!(
                r#"{{"model": "tinyrisc", "program": "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n", "mode": "{mode}"}}"#
            )
        };
        let a = post(&state, "/v1/simulate", &body("interp"));
        let b = post(&state, "/v1/simulate", &body("compiled"));
        assert_eq!(a.status, 200);
        let digest = |r: &Response| {
            let text = String::from_utf8(r.body.clone()).unwrap();
            let key = "\"state_digest\": ";
            let at = text.find(key).unwrap() + key.len();
            text[at..].split(',').next().unwrap().to_owned()
        };
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn unknown_model_is_404_and_bad_asm_is_422() {
        let state = AppState::new();
        let resp = post(&state, "/v1/assemble", r#"{"model": "z80", "program": "NOP"}"#);
        assert_eq!(resp.status, 404);
        let resp =
            post(&state, "/v1/assemble", r#"{"model": "tinyrisc", "program": "FROBNICATE R1"}"#);
        assert_eq!(resp.status, 422);
        let resp = post(&state, "/v1/simulate", r#"{"broken": true}"#);
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn routes_404_and_405() {
        let state = AppState::new();
        assert_eq!(get(&state, "/nope").status, 404);
        assert_eq!(post(&state, "/healthz", "").status, 405);
        assert_eq!(get(&state, "/v1/simulate").status, 405);
    }

    #[test]
    fn budget_exhaustion_reports_halted_false() {
        let state = AppState::new();
        // An infinite loop: branch to self.
        let resp = post(
            &state,
            "/v1/simulate",
            r#"{"model": "tinyrisc", "program": "loop: JMP loop\n", "max_cycles": 50}"#,
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"halted\": false"), "{text}");
        assert!(text.contains("\"cycles\": 50"), "{text}");
    }

    #[test]
    fn a_passed_deadline_is_a_504() {
        let state = AppState::new();
        let req = Request {
            method: "POST".to_owned(),
            target: "/v1/simulate".to_owned(),
            http11: true,
            headers: Vec::new(),
            body:
                br#"{"model": "tinyrisc", "program": "loop: JMP loop\n", "max_cycles": 100000000}"#
                    .to_vec(),
        };
        let resp = state.dispatch(&req, Instant::now());
        assert_eq!(resp.status, 504, "{}", String::from_utf8_lossy(&resp.body));
    }

    #[test]
    fn metrics_negotiates_prometheus_and_healthz_stays_plain() {
        let state = AppState::new();
        let resp = get(&state, "/metrics");
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.headers.get("Content-Type").map(String::as_str),
            Some("text/plain; version=0.0.4; charset=utf-8")
        );
        let text = String::from_utf8(resp.body).unwrap();
        let build_line = format!("lisa_build_info{{version=\"{}\"}} 1", env!("CARGO_PKG_VERSION"));
        assert!(text.contains(&build_line), "build info missing from:\n{text}");

        let resp = get(&state, "/healthz");
        assert_eq!(
            resp.headers.get("Content-Type").map(String::as_str),
            Some("text/plain; charset=utf-8")
        );
    }

    #[test]
    fn debug_spans_reports_a_connected_simulate_tree() {
        use lisa_metrics::json::{self, Value};

        let state = AppState::new();
        // Stand in for the server front end: a request span with the
        // handler's phases dispatched beneath it.
        let recorder = Arc::clone(state.spans());
        let trace = recorder.new_trace();
        let request_id = recorder.alloc_id();
        let scope =
            SpanScope { recorder: Arc::clone(&recorder), trace, parent: request_id, worker: 1 };
        let req = Request {
            method: "POST".to_owned(),
            target: "/v1/simulate".to_owned(),
            http11: true,
            headers: Vec::new(),
            body: br#"{"model": "tinyrisc", "program": "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n"}"#.to_vec(),
        };
        let start = recorder.now_ns();
        let resp = state.dispatch_spanned(&req, no_deadline(), Some(&scope));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let dur = recorder.now_ns().saturating_sub(start);
        recorder.record_with_id(request_id, trace, 0, SpanKind::Request, 1, start, dur);

        let resp = get(&state, "/v1/debug/spans?limit=512");
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).expect("valid JSON");
        let spans: Vec<&Value> = doc
            .get("spans")
            .and_then(Value::as_array)
            .expect("spans array")
            .iter()
            .filter(|s| s.get("trace").and_then(Value::as_u64) == Some(trace))
            .collect();
        let names: Vec<&str> =
            spans.iter().filter_map(|s| s.get("name").and_then(Value::as_str)).collect();
        for expected in ["request", "route", "assemble", "run", "serialize", "cycle_chunk"] {
            assert!(names.contains(&expected), "missing `{expected}` in {names:?}");
        }
        // Single connected tree: exactly one root, every parent resolves.
        let ids: std::collections::BTreeSet<u64> =
            spans.iter().filter_map(|s| s.get("span").and_then(Value::as_u64)).collect();
        assert_eq!(ids.len(), spans.len());
        let roots =
            spans.iter().filter(|s| s.get("parent").and_then(Value::as_u64) == Some(0)).count();
        assert_eq!(roots, 1, "one root in {names:?}");
        for s in &spans {
            let parent = s.get("parent").and_then(Value::as_u64).unwrap();
            assert!(parent == 0 || ids.contains(&parent), "dangling parent {parent}");
        }
    }

    #[test]
    fn debug_spans_chrome_format_is_an_event_array() {
        use lisa_metrics::json::{self, Value};

        let state = AppState::new();
        let resp =
            post(&state, "/v1/simulate", r#"{"model": "tinyrisc", "program": "LDI R1, 1\nHLT\n"}"#);
        assert_eq!(resp.status, 200);
        // Unspanned dispatch records nothing; synthesize one span so the
        // chrome array is non-empty.
        let trace = state.spans().new_trace();
        let t0 = state.spans().now_ns();
        state.spans().record(trace, 0, SpanKind::Request, 0, t0, 10);

        let resp = get(&state, "/v1/debug/spans?format=chrome");
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).expect("valid JSON");
        let events = doc.as_array().expect("array form");
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.get("ph").and_then(Value::as_str) == Some("X")));

        assert_eq!(get(&state, "/v1/debug/spans?format=nope").status, 400);
        assert_eq!(get(&state, "/v1/debug/spans?limit=bogus").status, 400);
        assert_eq!(post(&state, "/v1/debug/spans", "").status, 405);
    }

    #[test]
    fn debug_spans_limit_keeps_the_newest() {
        use lisa_metrics::json::{self, Value};

        let state = AppState::new();
        for i in 0..10 {
            let trace = state.spans().new_trace();
            state.spans().record(trace, 0, SpanKind::Request, 0, i * 100, 10);
        }
        let resp = get(&state, "/v1/debug/spans?limit=3");
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let spans = doc.get("spans").and_then(Value::as_array).unwrap();
        assert_eq!(spans.len(), 3);
        let starts: Vec<u64> =
            spans.iter().filter_map(|s| s.get("start_ns").and_then(Value::as_u64)).collect();
        assert_eq!(starts, [700, 800, 900], "newest three survive the limit");
    }

    #[test]
    fn simulate_with_probes_reports_hits() {
        use lisa_metrics::json;

        let state = AppState::new();
        let resp = post(
            &state,
            "/v1/simulate",
            r#"{"model": "tinyrisc", "program": "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n",
                "probes": ["reg R[3]", "watch dmem", "trace 2"]}"#,
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("halted").and_then(json::Value::as_bool), Some(true));
        let probes = doc.get("probes").expect("probes object");
        assert_eq!(probes.get("reg R[3]").and_then(json::Value::as_u64), Some(1));
        assert_eq!(probes.get("watch dmem").and_then(json::Value::as_u64), Some(0));
        assert_eq!(probes.get("trace 2").and_then(json::Value::as_u64), Some(1));
        assert!(doc.get("probe_hits").and_then(json::Value::as_u64).unwrap_or(0) >= 2);
        assert!(doc.get("breakpoint").is_none(), "nothing stopped this run");
    }

    #[test]
    fn simulate_breakpoint_stops_the_run_and_is_reported() {
        use lisa_metrics::json;

        let state = AppState::new();
        let resp = post(
            &state,
            "/v1/simulate",
            r#"{"model": "tinyrisc", "program": "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n",
                "probes": ["break 2"]}"#,
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("halted").and_then(json::Value::as_bool), Some(false));
        let bp = doc.get("breakpoint").expect("breakpoint object");
        assert_eq!(bp.get("probe").and_then(json::Value::as_str), Some("break 2"));
        assert_eq!(bp.get("pc").and_then(json::Value::as_i64), Some(2));
    }

    #[test]
    fn bad_probe_specs_are_422() {
        let state = AppState::new();
        let body = |probe: &str| {
            format!(r#"{{"model": "tinyrisc", "program": "HLT\n", "probes": ["{probe}"]}}"#)
        };
        // Parse error: unknown clause keyword.
        let resp = post(&state, "/v1/simulate", &body("frobnicate dmem"));
        assert_eq!(resp.status, 422, "{}", String::from_utf8_lossy(&resp.body));
        // Compile error: no such resource.
        let resp = post(&state, "/v1/simulate", &body("watch nonexistent"));
        assert_eq!(resp.status, 422, "{}", String::from_utf8_lossy(&resp.body));
    }

    #[test]
    fn debug_arch_serves_the_merged_profile() {
        use lisa_metrics::json;

        let state = AppState::new();
        // Before any run: an empty profile, still valid JSON.
        let resp = get(&state, "/v1/debug/arch");
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("cycles").and_then(json::Value::as_u64), Some(0));

        let body = r#"{"model": "tinyrisc", "program": "LDI R1, 1\nLDI R2, 3\nST R1, R2\nHLT\n"}"#;
        assert_eq!(post(&state, "/v1/simulate", body).status, 200);
        let resp = get(&state, "/v1/debug/arch");
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let first = doc.get("cycles").and_then(json::Value::as_u64).expect("cycles");
        assert!(first > 0);
        assert!(doc.get("op_execs").is_some(), "op table present");

        // A second run merges on top instead of replacing.
        assert_eq!(post(&state, "/v1/simulate", body).status, 200);
        let resp = get(&state, "/v1/debug/arch");
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let second = doc.get("cycles").and_then(json::Value::as_u64).expect("cycles");
        assert_eq!(second, first * 2);

        // The utilization gauges landed in the registry.
        let text = String::from_utf8(get(&state, "/metrics").body).unwrap();
        assert!(text.contains("lisa_arch_cycles"), "{text}");

        assert_eq!(post(&state, "/v1/debug/arch", "").status, 405);
    }

    #[test]
    fn fuzz_happy_path_reports_coverage_and_metrics() {
        use lisa_metrics::json;

        let state = AppState::new();
        let resp =
            post(&state, "/v1/fuzz", r#"{"model": "tinyrisc", "seed_count": 20, "max_len": 8}"#);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("iterations").and_then(json::Value::as_u64), Some(20));
        assert_eq!(doc.get("passed").and_then(json::Value::as_bool), Some(true));
        assert_eq!(doc.get("stopped").and_then(json::Value::as_bool), Some(false));
        let paths = doc.get("coverage").unwrap().get("paths").and_then(json::Value::as_u64);
        assert!(paths.unwrap() > 0, "no coverage recorded");
        assert!(doc.get("reproducers").unwrap().as_array().unwrap().is_empty());

        let text = String::from_utf8(get(&state, "/metrics").body).unwrap();
        assert!(text.contains("lisa_fuzz_programs_total{model=\"tinyrisc\"} 20"), "{text}");
        assert!(text.contains("lisa_fuzz_paths_covered{model=\"tinyrisc\"}"), "{text}");
        assert!(text.contains("lisa_fuzz_divergences_total{model=\"tinyrisc\"} 0"), "{text}");
    }

    #[test]
    fn fuzz_coverage_gauge_is_monotone_across_requests() {
        use lisa_metrics::{MetricKey, MetricValue};

        let state = AppState::new();
        let body = |start: u64| {
            format!(r#"{{"model": "tinyrisc", "seed_start": {start}, "seed_count": 10}}"#)
        };
        let gauge = |state: &AppState| {
            let snap = state.registry().snapshot();
            let key = MetricKey::new("lisa_fuzz_paths_covered", &[("model", "tinyrisc")]);
            match snap.metrics.get(&key) {
                Some(&MetricValue::Gauge(v)) => v,
                other => panic!("gauge missing: {other:?}"),
            }
        };
        assert_eq!(post(&state, "/v1/fuzz", &body(0)).status, 200);
        let first = gauge(&state);
        assert_eq!(post(&state, "/v1/fuzz", &body(10)).status, 200);
        let second = gauge(&state);
        assert!(second >= first, "coverage gauge regressed: {first} -> {second}");
        // Replaying the same range cannot shrink (or inflate) coverage.
        assert_eq!(post(&state, "/v1/fuzz", &body(0)).status, 200);
        assert_eq!(gauge(&state), second);
    }

    #[test]
    fn fuzz_validates_the_request() {
        let state = AppState::new();
        assert_eq!(post(&state, "/v1/fuzz", "not json").status, 400);
        assert_eq!(post(&state, "/v1/fuzz", r#"{"model": "z80"}"#).status, 404);
        for bad in [
            r#"{"model": "tinyrisc", "seed_count": 0}"#,
            r#"{"model": "tinyrisc", "seed_count": 100000000}"#,
            r#"{"model": "tinyrisc", "max_len": 0}"#,
            r#"{"model": "tinyrisc", "max_len": 1000000}"#,
            r#"{"model": "tinyrisc", "max_cycles": 0}"#,
            r#"{"model": "tinyrisc", "seed_start": 18446744073709551615, "seed_count": 2}"#,
        ] {
            let resp = post(&state, "/v1/fuzz", bad);
            assert_eq!(resp.status, 422, "{bad}: {}", String::from_utf8_lossy(&resp.body));
        }
        assert_eq!(get(&state, "/v1/fuzz").status, 405);
    }

    #[test]
    fn fuzz_self_check_catches_and_shrinks_the_injected_fault() {
        use lisa_metrics::json;

        let state = AppState::new();
        let resp = post(
            &state,
            "/v1/fuzz",
            r#"{"model": "tinyrisc", "seed_count": 4, "self_check": true}"#,
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("self_check_caught").and_then(json::Value::as_bool), Some(true));
        let reps = doc.get("reproducers").unwrap().as_array().unwrap();
        assert_eq!(reps.len(), 1, "the injected fault must come back as a reproducer");
        // A fault at cycle 0 diverges even on the empty (all-halt)
        // image, so the minimal reproducer can be zero words.
        let words = reps[0].get("words").unwrap().as_array().unwrap();
        assert!(words.len() <= 4, "not shrunk: {} words", words.len());

        // Deliberate faults never pollute the real conformance metrics.
        let text = String::from_utf8(get(&state, "/metrics").body).unwrap();
        assert!(!text.contains("lisa_fuzz_divergences_total"), "{text}");
    }

    #[test]
    fn fuzz_deadline_is_a_504() {
        let state = AppState::new();
        let req = Request {
            method: "POST".to_owned(),
            target: "/v1/fuzz".to_owned(),
            http11: true,
            headers: Vec::new(),
            body: br#"{"model": "tinyrisc", "seed_count": 100000}"#.to_vec(),
        };
        let resp = state.dispatch(&req, Instant::now());
        assert_eq!(resp.status, 504, "{}", String::from_utf8_lossy(&resp.body));
    }

    #[test]
    fn fuzz_distill_covers_exactly_the_run() {
        use lisa_metrics::json;

        let state = AppState::new();
        let resp = post(
            &state,
            "/v1/fuzz",
            r#"{"model": "tinyrisc", "seed_count": 30, "max_len": 8, "distill": true}"#,
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let run_paths =
            doc.get("coverage").unwrap().get("paths").and_then(json::Value::as_u64).unwrap();
        let distilled = doc.get("distilled").expect("distilled section");
        assert_eq!(distilled.get("paths").and_then(json::Value::as_u64), Some(run_paths));
        let indices = distilled.get("indices").unwrap().as_array().unwrap();
        assert!(!indices.is_empty() && indices.len() <= 30);
    }

    #[test]
    fn metrics_expose_uptime_and_scrape_counter() {
        let state = AppState::new();
        let text = String::from_utf8(get(&state, "/metrics").body).unwrap();
        assert!(text.contains("lisa_metrics_scrapes_total 1"), "{text}");
        assert!(text.contains("lisa_uptime_seconds"), "{text}");
        let text = String::from_utf8(get(&state, "/metrics").body).unwrap();
        assert!(text.contains("lisa_metrics_scrapes_total 2"), "{text}");
    }

    #[test]
    fn metrics_count_dispatches_per_endpoint() {
        use lisa_metrics::{MetricKey, MetricValue};

        let state = AppState::new();
        for _ in 0..3 {
            assert_eq!(get(&state, "/healthz").status, 200);
        }
        assert_eq!(get(&state, "/nope").status, 404);
        let snap = state.registry().snapshot();
        let key = MetricKey::new(
            "lisa_serve_requests_total",
            &[("endpoint", "/healthz"), ("status", "200")],
        );
        assert_eq!(snap.metrics.get(&key), Some(&MetricValue::Counter(3)));
        let key = MetricKey::new(
            "lisa_serve_requests_total",
            &[("endpoint", "not_found"), ("status", "404")],
        );
        assert_eq!(snap.metrics.get(&key), Some(&MetricValue::Counter(1)));
        // The /metrics endpoint itself gets counted and timed.
        let text = String::from_utf8(get(&state, "/metrics").body).unwrap();
        assert!(text.contains("lisa_serve_request_duration_us_bucket"), "{text}");
    }
}

//! JSON request/response bodies for the service endpoints.
//!
//! The wire format rides on `lisa_metrics::json` (the workspace's
//! dependency-free JSON reader/writer). Every request type has a
//! `from_json` that rejects unknown shapes with a message the handler
//! returns as a 400/422, and every response type has a deterministic
//! `to_json`; the property tests round-trip both directions.

use std::fmt::Write as _;

use lisa_conform::{Distilled, FuzzReport, Reproducer};
use lisa_metrics::json::{self, escape, Value};

/// `POST /v1/assemble` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleRequest {
    /// Builtin model name (`tinyrisc`, `accu16`, `scalar2`, `vliw62`).
    pub model: String,
    /// Assembly source text (newline-separated statements).
    pub program: String,
}

/// `POST /v1/simulate` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulateRequest {
    /// Builtin model name.
    pub model: String,
    /// Assembly source text.
    pub program: String,
    /// Backend: `"interp"`, `"ops"` or `"compiled"` (default).
    pub mode: String,
    /// Control-step budget (default 100 000).
    pub max_cycles: u64,
    /// Resources to dump after the run: `[name, first_n]` pairs.
    pub dump: Vec<(String, usize)>,
    /// Probe-spec clauses (`watch dmem[0..16]`, `break 5`, `reg R`) to
    /// arm for the run; hit counts come back in the response.
    pub probes: Vec<String>,
}

/// `POST /v1/batch` body (all fields optional on the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRequest {
    /// Backends: `"interp"`, `"compiled"`, `"ops"`, `"all"` or `"both"`
    /// (default).
    pub mode: String,
    /// Worker threads for the batch pool (default 2, capped at 16).
    pub workers: usize,
}

/// `POST /v1/fuzz` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzRequest {
    /// Builtin model name.
    pub model: String,
    /// Master seed (default 0); with `seed_start` it makes every
    /// program a pure function of the request.
    pub seed: u64,
    /// First iteration index (default 0). Fleet coordinators assign
    /// each instance a disjoint `[seed_start, seed_start + seed_count)`
    /// range under one shared seed.
    pub seed_start: u64,
    /// Programs to synthesize and oracle-check (default 100).
    pub seed_count: u64,
    /// Maximum synthesized prefix length in words (default 24).
    pub max_len: u64,
    /// Cycle budget per simulated run (default 2000).
    pub max_cycles: u64,
    /// Inject a backend fault and demand the oracles catch it —
    /// validates the whole pipeline over HTTP (default false).
    pub self_check: bool,
    /// Also distill the seed range to a minimal covering seed set
    /// (default false).
    pub distill: bool,
}

fn parse_object(body: &[u8]) -> Result<Value, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let value = json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    match value {
        Value::Obj(_) => Ok(value),
        _ => Err("body must be a JSON object".to_owned()),
    }
}

fn required_str(obj: &Value, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn optional_str(obj: &Value, key: &str, default: &str) -> Result<String, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(default.to_owned()),
        Some(v) => {
            v.as_str().map(str::to_owned).ok_or_else(|| format!("field `{key}` must be a string"))
        }
    }
}

fn optional_u64(obj: &Value, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => {
            v.as_u64().ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
        }
    }
}

fn optional_bool(obj: &Value, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| format!("field `{key}` must be a boolean")),
    }
}

impl AssembleRequest {
    /// Parses the request body.
    ///
    /// # Errors
    ///
    /// A description of the first schema violation.
    pub fn from_json(body: &[u8]) -> Result<AssembleRequest, String> {
        let obj = parse_object(body)?;
        Ok(AssembleRequest {
            model: required_str(&obj, "model")?,
            program: required_str(&obj, "program")?,
        })
    }

    /// Serializes to the wire shape (used by tests and the bench client).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!("{{\"model\": {}, \"program\": {}}}", escape(&self.model), escape(&self.program))
    }
}

impl SimulateRequest {
    /// Parses the request body.
    ///
    /// # Errors
    ///
    /// A description of the first schema violation.
    pub fn from_json(body: &[u8]) -> Result<SimulateRequest, String> {
        let obj = parse_object(body)?;
        let mut dump = Vec::new();
        if let Some(v) = obj.get("dump") {
            let items = v.as_array().ok_or("field `dump` must be an array")?;
            for item in items {
                let pair = item.as_array().filter(|a| a.len() == 2);
                let (name, count) = match pair {
                    Some([n, c]) => (n.as_str(), c.as_u64()),
                    _ => (None, None),
                };
                match (name, count) {
                    (Some(n), Some(c)) => dump.push((n.to_owned(), c as usize)),
                    _ => return Err("`dump` entries must be [name, count] pairs".to_owned()),
                }
            }
        }
        let mut probes = Vec::new();
        match obj.get("probes") {
            None | Some(Value::Null) => {}
            Some(v) => {
                let items = v.as_array().ok_or("field `probes` must be an array of strings")?;
                for item in items {
                    let clause =
                        item.as_str().ok_or("`probes` entries must be strings".to_owned())?;
                    probes.push(clause.to_owned());
                }
            }
        }
        Ok(SimulateRequest {
            model: required_str(&obj, "model")?,
            program: required_str(&obj, "program")?,
            mode: optional_str(&obj, "mode", "compiled")?,
            max_cycles: optional_u64(&obj, "max_cycles", 100_000)?,
            dump,
            probes,
        })
    }

    /// Serializes to the wire shape.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"model\": {}, \"program\": {}, \"mode\": {}, \"max_cycles\": {}",
            escape(&self.model),
            escape(&self.program),
            escape(&self.mode),
            self.max_cycles
        );
        if !self.dump.is_empty() {
            out.push_str(", \"dump\": [");
            for (i, (name, count)) in self.dump.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{}, {count}]", escape(name));
            }
            out.push(']');
        }
        if !self.probes.is_empty() {
            out.push_str(", \"probes\": [");
            for (i, clause) in self.probes.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&escape(clause));
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

impl BatchRequest {
    /// Parses the request body; an empty body means "all defaults".
    ///
    /// # Errors
    ///
    /// A description of the first schema violation.
    pub fn from_json(body: &[u8]) -> Result<BatchRequest, String> {
        if body.is_empty() {
            return Ok(BatchRequest { mode: "both".to_owned(), workers: 2 });
        }
        let obj = parse_object(body)?;
        let workers = optional_u64(&obj, "workers", 2)?;
        if workers == 0 || workers > 16 {
            return Err("field `workers` must be between 1 and 16".to_owned());
        }
        Ok(BatchRequest { mode: optional_str(&obj, "mode", "both")?, workers: workers as usize })
    }

    /// Serializes to the wire shape.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!("{{\"mode\": {}, \"workers\": {}}}", escape(&self.mode), self.workers)
    }
}

impl FuzzRequest {
    /// Parses the request body.
    ///
    /// # Errors
    ///
    /// A description of the first schema violation.
    pub fn from_json(body: &[u8]) -> Result<FuzzRequest, String> {
        let obj = parse_object(body)?;
        Ok(FuzzRequest {
            model: required_str(&obj, "model")?,
            seed: optional_u64(&obj, "seed", 0)?,
            seed_start: optional_u64(&obj, "seed_start", 0)?,
            seed_count: optional_u64(&obj, "seed_count", 100)?,
            max_len: optional_u64(&obj, "max_len", 24)?,
            max_cycles: optional_u64(&obj, "max_cycles", 2000)?,
            self_check: optional_bool(&obj, "self_check", false)?,
            distill: optional_bool(&obj, "distill", false)?,
        })
    }

    /// Serializes to the wire shape (used by the fleet coordinator).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"model\": {}, \"seed\": {}, \"seed_start\": {}, \"seed_count\": {}, \
             \"max_len\": {}, \"max_cycles\": {}, \"self_check\": {}, \"distill\": {}}}",
            escape(&self.model),
            self.seed,
            self.seed_start,
            self.seed_count,
            self.max_len,
            self.max_cycles,
            self.self_check,
            self.distill
        )
    }
}

/// Renders an error body: `{"error": "<message>"}`.
#[must_use]
pub fn error_body(message: &str) -> String {
    format!("{{\"error\": {}}}", escape(message))
}

/// Renders the assemble response.
#[must_use]
pub fn assemble_body(origin: u64, words: &[u128], listing: &str) -> String {
    let mut out = format!("{{\"origin\": {origin}, \"words\": [");
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{w:#x}\"");
    }
    let _ = write!(out, "], \"listing\": {}}}", escape(listing));
    out
}

/// Everything the simulate endpoint reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulateOutcome {
    /// Control steps executed.
    pub cycles: u64,
    /// Whether the halt flag fired (false: budget exhausted).
    pub halted: bool,
    /// Instructions retired.
    pub instructions_retired: u64,
    /// Order-independent digest of the final architectural state.
    pub state_digest: u64,
    /// Requested resource dumps.
    pub dump: Vec<(String, Vec<i64>)>,
    /// Per-probe hit counts (label, hits), in probe order; empty when
    /// the request armed no probes.
    pub probes: Vec<(String, u64)>,
    /// The breakpoint that stopped the run, if one did: (label, pc).
    pub breakpoint: Option<(String, i64)>,
}

/// Renders the simulate response.
#[must_use]
pub fn simulate_body(outcome: &SimulateOutcome) -> String {
    let mut out = format!(
        "{{\"cycles\": {}, \"halted\": {}, \"instructions_retired\": {}, \"state_digest\": \"{:#018x}\"",
        outcome.cycles, outcome.halted, outcome.instructions_retired, outcome.state_digest
    );
    if !outcome.dump.is_empty() {
        out.push_str(", \"dump\": {");
        for (i, (name, values)) in outcome.dump.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: [", escape(name));
            for (j, v) in values.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        }
        out.push('}');
    }
    if !outcome.probes.is_empty() {
        let total: u64 = outcome.probes.iter().map(|(_, n)| n).sum();
        let _ = write!(out, ", \"probe_hits\": {total}, \"probes\": {{");
        for (i, (label, hits)) in outcome.probes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {hits}", escape(label));
        }
        out.push('}');
    }
    if let Some((label, pc)) = &outcome.breakpoint {
        let _ = write!(out, ", \"breakpoint\": {{\"probe\": {}, \"pc\": {pc}}}", escape(label));
    }
    out.push('}');
    out
}

/// Renders the batch response.
#[must_use]
pub fn batch_body(jobs: usize, failed: usize, total_cycles: u64, elapsed_us: u64) -> String {
    format!(
        "{{\"jobs\": {jobs}, \"failed\": {failed}, \"total_cycles\": {total_cycles}, \
         \"elapsed_us\": {elapsed_us}}}"
    )
}

/// Renders one reproducer as a JSON object (words as `0x…` strings, the
/// same encoding the `.repro` corpus format uses).
#[must_use]
pub fn reproducer_json(rep: &Reproducer) -> String {
    let mut out = format!(
        "{{\"model\": {}, \"seed\": {}, \"oracle\": {}, \"content_hash\": \"{:016x}\", \
         \"words\": [",
        escape(&rep.model),
        rep.seed,
        escape(&rep.oracle),
        rep.content_hash()
    );
    for (i, w) in rep.words.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{w:#x}\"");
    }
    out.push_str("]}");
    out
}

/// Parses the [`reproducer_json`] shape back (used by the fleet
/// coordinator on `/v1/fuzz` responses).
///
/// # Errors
///
/// A description of the first malformed field.
pub fn reproducer_from_value(v: &Value) -> Result<Reproducer, String> {
    let model =
        v.get("model").and_then(Value::as_str).ok_or("reproducer is missing `model`")?.to_owned();
    let seed = v.get("seed").and_then(Value::as_u64).ok_or("reproducer is missing `seed`")?;
    let oracle =
        v.get("oracle").and_then(Value::as_str).ok_or("reproducer is missing `oracle`")?.to_owned();
    let mut words = Vec::new();
    for item in v.get("words").and_then(Value::as_array).ok_or("reproducer is missing `words`")? {
        let text = item.as_str().ok_or("reproducer words must be strings")?;
        let digits = text.strip_prefix("0x").ok_or("reproducer words must be 0x-hex")?;
        words.push(u128::from_str_radix(digits, 16).map_err(|e| format!("bad word: {e}"))?);
    }
    Ok(Reproducer { model, seed, oracle, words })
}

/// Renders the fuzz response: run counters, merged coverage, shrunk
/// reproducers, and — when requested — the self-check outcome and the
/// distilled seed set.
#[must_use]
pub fn fuzz_body(
    req: &FuzzRequest,
    report: &FuzzReport,
    reproducers: &[Reproducer],
    self_check_caught: Option<bool>,
    distilled: Option<&Distilled>,
) -> String {
    let mut out = format!(
        "{{\"model\": {}, \"seed\": {}, \"seed_start\": {}, \"iterations\": {}, \
         \"halted\": {}, \"budget\": {}, \"errored\": {}, \"passed\": {}, \"stopped\": {}",
        escape(&req.model),
        req.seed,
        req.seed_start,
        report.iterations,
        report.halted,
        report.budget,
        report.errored,
        report.passed(),
        report.stopped
    );
    let _ = write!(
        out,
        ", \"coverage\": {{\"paths\": {}, \"map\": {}}}",
        report.coverage.len(),
        report.coverage.to_json()
    );
    out.push_str(", \"reproducers\": [");
    for (i, rep) in reproducers.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&reproducer_json(rep));
    }
    out.push(']');
    if let Some(caught) = self_check_caught {
        let _ = write!(out, ", \"self_check_caught\": {caught}");
    }
    if let Some(d) = distilled {
        let _ = write!(out, ", \"distilled\": {{\"paths\": {}, \"indices\": [", d.coverage.len());
        for (i, index) in d.indices.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{index}");
        }
        out.push_str("]}");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_request_round_trips() {
        let req = AssembleRequest {
            model: "tinyrisc".to_owned(),
            program: "LDI R1, 6\nHLT\n".to_owned(),
        };
        assert_eq!(AssembleRequest::from_json(req.to_json().as_bytes()).unwrap(), req);
    }

    #[test]
    fn simulate_request_defaults_and_round_trip() {
        let req =
            SimulateRequest::from_json(br#"{"model": "tinyrisc", "program": "HLT"}"#).unwrap();
        assert_eq!(req.mode, "compiled");
        assert_eq!(req.max_cycles, 100_000);
        assert!(req.dump.is_empty());

        let full = SimulateRequest {
            model: "vliw62".to_owned(),
            program: "HALT\n".to_owned(),
            mode: "interp".to_owned(),
            max_cycles: 42,
            dump: vec![("A".to_owned(), 4), ("B".to_owned(), 2)],
            probes: vec!["watch dmem[0..16]".to_owned(), "break 0x5".to_owned()],
        };
        assert_eq!(SimulateRequest::from_json(full.to_json().as_bytes()).unwrap(), full);
    }

    #[test]
    fn schema_violations_are_described() {
        for (body, needle) in [
            (&b"not json"[..], "bad JSON"),
            (b"[1, 2]", "must be a JSON object"),
            (b"{\"program\": \"HLT\"}", "`model`"),
            (b"{\"model\": \"t\", \"program\": 7}", "`program`"),
            (b"{\"model\": \"t\", \"program\": \"x\", \"max_cycles\": -3}", "`max_cycles`"),
            (b"{\"model\": \"t\", \"program\": \"x\", \"dump\": [[1, 2]]}", "dump"),
            (b"{\"model\": \"t\", \"program\": \"x\", \"probes\": \"watch\"}", "probes"),
            (b"{\"model\": \"t\", \"program\": \"x\", \"probes\": [7]}", "probes"),
            (b"\xff\xfe", "UTF-8"),
        ] {
            let err = SimulateRequest::from_json(body).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
        assert!(BatchRequest::from_json(b"{\"workers\": 0}").unwrap_err().contains("workers"));
        assert!(BatchRequest::from_json(b"{\"workers\": 17}").unwrap_err().contains("workers"));
    }

    #[test]
    fn fuzz_request_defaults_and_round_trip() {
        let req = FuzzRequest::from_json(br#"{"model": "tinyrisc"}"#).unwrap();
        assert_eq!(req.seed, 0);
        assert_eq!(req.seed_start, 0);
        assert_eq!(req.seed_count, 100);
        assert_eq!(req.max_len, 24);
        assert_eq!(req.max_cycles, 2000);
        assert!(!req.self_check);
        assert!(!req.distill);

        let full = FuzzRequest {
            model: "vliw62".to_owned(),
            seed: 9,
            seed_start: 1000,
            seed_count: 250,
            max_len: 16,
            max_cycles: 500,
            self_check: true,
            distill: true,
        };
        assert_eq!(FuzzRequest::from_json(full.to_json().as_bytes()).unwrap(), full);

        let err = FuzzRequest::from_json(br#"{"model": "t", "seed_count": -1}"#).unwrap_err();
        assert!(err.contains("seed_count"), "{err}");
        let err = FuzzRequest::from_json(br#"{"model": "t", "self_check": 3}"#).unwrap_err();
        assert!(err.contains("self_check"), "{err}");
    }

    #[test]
    fn fuzz_body_is_valid_json_and_reproducers_round_trip() {
        use lisa_conform::CoverageMap;
        use lisa_metrics::json::parse;

        let req = FuzzRequest::from_json(br#"{"model": "tinyrisc"}"#).unwrap();
        let mut report = FuzzReport { iterations: 10, halted: 8, budget: 2, ..Default::default() };
        report.coverage.record(0x1234);
        report.coverage.record(0x5678);
        let rep = Reproducer {
            model: "tinyrisc".to_owned(),
            seed: 0,
            oracle: "lockstep".to_owned(),
            words: vec![0xf000, 0x1a2b],
        };
        let distilled = Distilled { indices: vec![3, 7], coverage: report.coverage.clone() };
        let body =
            fuzz_body(&req, &report, std::slice::from_ref(&rep), Some(true), Some(&distilled));
        let v = parse(&body).unwrap();
        assert_eq!(v.get("iterations").unwrap().as_u64(), Some(10));
        assert_eq!(v.get("passed").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("stopped").unwrap().as_bool(), Some(false));
        let cov = v.get("coverage").unwrap();
        assert_eq!(cov.get("paths").unwrap().as_u64(), Some(2));
        assert!(CoverageMap::from_value(cov.get("map").unwrap()).unwrap().covers(&report.coverage));
        assert_eq!(v.get("self_check_caught").unwrap().as_bool(), Some(true));
        let d = v.get("distilled").unwrap();
        assert_eq!(d.get("indices").unwrap().as_array().unwrap().len(), 2);

        let reps = v.get("reproducers").unwrap().as_array().unwrap();
        let back = reproducer_from_value(&reps[0]).unwrap();
        assert_eq!(back, rep);
        assert_eq!(
            reps[0].get("content_hash").unwrap().as_str().unwrap(),
            format!("{:016x}", rep.content_hash())
        );
    }

    #[test]
    fn batch_request_accepts_an_empty_body() {
        let req = BatchRequest::from_json(b"").unwrap();
        assert_eq!(req.mode, "both");
        assert_eq!(req.workers, 2);
        assert_eq!(BatchRequest::from_json(req.to_json().as_bytes()).unwrap(), req);
    }

    #[test]
    fn response_bodies_are_valid_json() {
        use lisa_metrics::json::parse;

        let body = assemble_body(2, &[0x1234, 0xffff_ffff], "L1:\n");
        let v = parse(&body).unwrap();
        assert_eq!(v.get("origin").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("words").unwrap().as_array().unwrap().len(), 2);

        let outcome = SimulateOutcome {
            cycles: 9,
            halted: true,
            instructions_retired: 7,
            state_digest: 0xdead_beef,
            dump: vec![("R".to_owned(), vec![0, -4, 42])],
            probes: vec![("watch dmem".to_owned(), 3), ("break 5".to_owned(), 1)],
            breakpoint: Some(("break 5".to_owned(), 5)),
        };
        let v = parse(&simulate_body(&outcome)).unwrap();
        assert_eq!(v.get("cycles").unwrap().as_u64(), Some(9));
        assert_eq!(v.get("halted").unwrap().as_bool(), Some(true));
        let dump = v.get("dump").unwrap().get("R").unwrap().as_array().unwrap();
        assert_eq!(dump[1].as_i64(), Some(-4));
        assert_eq!(v.get("probe_hits").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("probes").unwrap().get("watch dmem").unwrap().as_u64(), Some(3));
        let bp = v.get("breakpoint").unwrap();
        assert_eq!(bp.get("probe").unwrap().as_str(), Some("break 5"));
        assert_eq!(bp.get("pc").unwrap().as_i64(), Some(5));

        let v = parse(&batch_body(10, 1, 12345, 678)).unwrap();
        assert_eq!(v.get("failed").unwrap().as_u64(), Some(1));

        let v = parse(&error_body("boom \"quoted\"")).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("boom \"quoted\""));
    }
}

//! A minimal blocking HTTP/1.1 client for talking to lisa-serve
//! instances — just enough for the fleet coordinator and the CLI, with
//! the same zero-dependency discipline as the server side.
//!
//! One request per connection (`Connection: close`), so response
//! framing is trivial: read the head, then `Content-Length` bytes (or
//! to EOF when the server omits the length).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response: status code and body bytes.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The response body.
    pub body: Vec<u8>,
}

/// Sends `POST <path>` with a JSON body to `addr` (`host:port`).
///
/// # Errors
///
/// Connection, write, read, or response-framing failures.
pub fn post(
    addr: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    send(addr, request.as_bytes(), timeout)
}

/// Sends `GET <path>` to `addr` (`host:port`).
///
/// # Errors
///
/// Connection, write, read, or response-framing failures.
pub fn get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<HttpResponse> {
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    send(addr, request.as_bytes(), timeout)
}

fn send(addr: &str, request: &[u8], timeout: Duration) -> std::io::Result<HttpResponse> {
    let mut conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true).ok();
    conn.set_read_timeout(Some(timeout))?;
    conn.set_write_timeout(Some(timeout))?;
    conn.write_all(request)?;
    let mut raw = Vec::new();
    // Connection: close — the server ends the response with EOF, so
    // reading to EOF always captures the full body even without a
    // Content-Length header.
    conn.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .ok_or_else(|| bad("response head never terminated"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("head is not UTF-8"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut body = raw[head_end..].to_vec();
    // Trust Content-Length when present; it guards against trailing
    // bytes if a proxy ever pads the close.
    if let Some(len) = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length: ").map(str::to_owned))
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        if body.len() < len {
            return Err(bad("response body truncated"));
        }
        body.truncate(len);
    }
    Ok(HttpResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nok!\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok!\n");
    }

    #[test]
    fn truncates_padding_and_rejects_short_bodies() {
        let padded = b"HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nnoEXTRA";
        let resp = parse_response(padded).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.body, b"no");
        let short = b"HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\nhi";
        assert!(parse_response(short).is_err());
    }

    #[test]
    fn no_content_length_reads_to_eof() {
        let raw = b"HTTP/1.1 200 OK\r\n\r\neverything to eof";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.body, b"everything to eof");
    }

    #[test]
    fn malformed_heads_are_errors() {
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nno terminator").is_err());
        assert!(parse_response(b"BOGUS\r\n\r\n").is_err());
    }

    #[test]
    fn round_trips_against_a_live_server() {
        use crate::{AppState, ServeConfig, Server};
        use std::sync::Arc;

        let config = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue: 16,
            ..ServeConfig::default()
        };
        let server = Server::bind(config, Arc::new(AppState::new())).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());

        let timeout = Duration::from_secs(10);
        let resp = get(&addr, "/healthz", timeout).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok\n");
        let resp =
            post(&addr, "/v1/assemble", r#"{"model": "tinyrisc", "program": "HLT\n"}"#, timeout)
                .unwrap();
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));

        handle.shutdown();
        join.join().unwrap();
    }
}

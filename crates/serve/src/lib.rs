//! lisa-serve — a dependency-free HTTP/1.1 simulation service.
//!
//! Embeds the whole LISA stack behind a small, hardened HTTP layer
//! written against `std` only:
//!
//! | Endpoint            | Method | Does |
//! |---------------------|--------|------|
//! | `/v1/assemble`      | POST   | assemble a program for a builtin model |
//! | `/v1/simulate`      | POST   | run one program under a cycle budget and wall-clock deadline |
//! | `/v1/batch`         | POST   | fan the kernel matrix out over the batch runner |
//! | `/v1/fuzz`          | POST   | run the five-oracle conformance fuzzer over a seed range |
//! | `/v1/models`        | GET    | list the builtin models |
//! | `/metrics`          | GET    | Prometheus exposition of the shared registry |
//! | `/v1/debug/spans`   | GET    | recent runtime spans (`?format=json\|chrome&limit=N`) |
//! | `/healthz`          | GET    | liveness probe |
//!
//! The module split mirrors the layering: [`http`] is the pure
//! parser/serializer (no I/O, proptest-friendly), [`api`] the JSON
//! bodies, [`service`] the router + handlers, [`server`] the TCP
//! acceptor/worker-pool front end. On the client side, [`client`] is a
//! minimal blocking HTTP client and [`fleet`] the coordinator that fans
//! `/v1/fuzz` seed ranges across several instances and merges the
//! results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod fleet;
pub mod http;
pub mod server;
pub mod service;

pub use fleet::{fuzz_fleet, FleetConfig, FleetReport, InstanceReport};
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
pub use service::AppState;

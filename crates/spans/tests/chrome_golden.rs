//! Chrome trace-event export determinism.
//!
//! The exporter promises byte-for-byte deterministic output for a given
//! span list, and the document shape is pinned against a checked-in
//! golden file (Perfetto and `chrome://tracing` both consume this
//! format, so drift is a compatibility break). The same fixture must
//! also survive JSONL export → import losslessly.
//!
//! To bless an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p lisa-spans --test chrome_golden
//! ```

use lisa_spans::export::{from_jsonl, to_chrome_trace, to_jsonl};
use lisa_spans::{SpanKind, SpanRecord};

/// A fixed span tree covering the interesting paths: one full request
/// tree across all three layers, sub-microsecond durations (fractional
/// `ts`/`dur`), an infra-trace span, and a non-zero worker lane.
fn fixture() -> Vec<SpanRecord> {
    let span = |trace, span, parent, kind, worker, start_ns, dur_ns| SpanRecord {
        trace,
        span,
        parent,
        kind,
        worker,
        start_ns,
        dur_ns,
    };
    vec![
        span(1, 1, 0, SpanKind::Accept, 1, 1_000, 950_500),
        span(1, 2, 1, SpanKind::QueueWait, 1, 1_100, 20_000),
        span(1, 3, 1, SpanKind::Request, 1, 21_500, 900_000),
        span(1, 4, 3, SpanKind::Parse, 1, 21_500, 700),
        span(1, 5, 3, SpanKind::Route, 1, 22_300, 870_000),
        span(1, 6, 5, SpanKind::Assemble, 1, 23_000, 40_000),
        span(1, 7, 5, SpanKind::Run, 1, 63_500, 800_000),
        span(1, 8, 7, SpanKind::Predecode, 1, 63_600, 9_000),
        span(1, 9, 7, SpanKind::CycleChunk, 1, 73_000, 790_123),
        span(1, 10, 5, SpanKind::Serialize, 1, 864_000, 25_000),
        span(1, 11, 3, SpanKind::Write, 1, 890_000, 30_999),
        span(0, 12, 0, SpanKind::LockPush, 0, 500, 42),
    ]
}

#[test]
fn two_exports_are_byte_identical() {
    assert_eq!(to_chrome_trace(&fixture()), to_chrome_trace(&fixture()));
}

#[test]
fn chrome_export_matches_the_golden_file() {
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/spans.json");
    let rendered = to_chrome_trace(&fixture());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "Chrome trace output drifted from tests/golden/spans.json; if \
         intentional, re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_fixture_round_trips_through_jsonl() {
    let spans = fixture();
    let imported = from_jsonl(&to_jsonl(&spans)).expect("importer accepts its own output");
    assert_eq!(imported, spans);
}

#[test]
fn chrome_export_is_structurally_sound() {
    let text = to_chrome_trace(&fixture());
    let doc = lisa_metrics::json::parse(&text).expect("valid JSON");
    let lisa_metrics::json::Value::Arr(events) = doc else {
        panic!("Chrome trace must be a JSON array");
    };
    assert_eq!(events.len(), fixture().len());
    for event in &events {
        assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(event.get("name").is_some() && event.get("ts").is_some());
        // Sub-microsecond precision survives as fractional microseconds.
    }
    assert!(text.contains("\"dur\": 790.123"), "ns → µs conversion keeps precision: {text}");
}

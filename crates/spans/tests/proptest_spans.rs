//! Property tests for the span recorder's concurrency contract.
//!
//! Invariants:
//!
//! 1. **Concurrent recording is safe** — any number of threads hammering
//!    one recorder never panics, and with enough capacity every span
//!    survives with a unique id.
//! 2. **Disabled means free and silent** — a disabled recorder allocates
//!    no ids, records nothing, and drops nothing.
//! 3. **Nothing is silently lost** — every record either survives to
//!    `collect()` or is tallied in `dropped()`.

use std::sync::Arc;

use lisa_spans::{SpanKind, SpanRecorder, SpanScope};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariant 1: N threads × M spans with worst-case shard-collision
    /// headroom: no panics, all ids unique, nothing dropped, every
    /// worker's spans intact.
    #[test]
    fn concurrent_recording_keeps_every_span_distinct(
        threads in 1usize..6,
        per_thread in 1usize..40,
    ) {
        // Sharding is by thread token, so in the worst case every thread
        // lands in one shard: give each of the 8 shards room for the
        // whole volume so the rings cannot wrap mid-test.
        let capacity = (threads * per_thread).next_power_of_two() * 8;
        let recorder = Arc::new(SpanRecorder::new(capacity));
        recorder.set_enabled(true);

        std::thread::scope(|scope| {
            for t in 0..threads {
                let recorder = Arc::clone(&recorder);
                scope.spawn(move || {
                    let trace = recorder.new_trace();
                    let scope = SpanScope::new(recorder, trace).with_worker(t as u32);
                    for i in 0..per_thread {
                        let kind = SpanKind::ALL[(t + i) % SpanKind::ALL.len()];
                        drop(scope.start(kind));
                    }
                });
            }
        });

        let collected = recorder.collect();
        prop_assert_eq!(recorder.dropped(), 0, "capacity was sufficient");
        prop_assert_eq!(collected.len(), threads * per_thread);

        let mut ids: Vec<u64> = collected.iter().map(|s| s.span).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "span ids must be unique");

        for t in 0..threads {
            let mine = collected.iter().filter(|s| s.worker == t as u32).count();
            prop_assert_eq!(mine, per_thread, "worker {}'s spans all present", t);
        }
        for span in &collected {
            prop_assert!(span.span != 0, "live spans never get the sentinel id");
        }
    }

    /// Invariant 2: when disabled, the hot path is inert — no ids, no
    /// records, no drops — even under concurrency.
    #[test]
    fn disabled_recorder_stays_empty(threads in 1usize..6, per_thread in 1usize..40) {
        let recorder = Arc::new(SpanRecorder::new(64));
        // Never enabled.
        std::thread::scope(|scope| {
            for t in 0..threads {
                let recorder = Arc::clone(&recorder);
                scope.spawn(move || {
                    let scope = SpanScope::new(recorder, 1).with_worker(t as u32);
                    for i in 0..per_thread {
                        let kind = SpanKind::ALL[i % SpanKind::ALL.len()];
                        let guard = scope.start(kind);
                        assert_eq!(guard.id(), 0, "disabled guards are inert");
                        drop(guard);
                        assert_eq!(scope.record(kind, 10, 5), 0, "disabled records nothing");
                    }
                });
            }
        });
        prop_assert!(recorder.collect().is_empty());
        prop_assert_eq!(recorder.dropped(), 0);
        prop_assert_eq!(recorder.alloc_id(), 0);
    }

    /// Invariant 3: from a single thread (one shard, no read races),
    /// survivors plus the drop tally account for every record.
    #[test]
    fn every_record_is_kept_or_counted(total in 1u64..400) {
        let recorder = Arc::new(SpanRecorder::new(64));
        recorder.set_enabled(true);
        let scope = SpanScope::new(Arc::clone(&recorder), recorder.new_trace());
        for i in 0..total {
            scope.record(SpanKind::CycleChunk, i, 1);
        }
        let collected = recorder.collect();
        prop_assert_eq!(collected.len() as u64 + recorder.dropped(), total);
        for span in &collected {
            prop_assert_eq!(span.kind, SpanKind::CycleChunk);
            prop_assert_eq!(span.dur_ns, 1);
        }
        // The flight recorder keeps the newest records.
        if let Some(last) = collected.last() {
            prop_assert_eq!(last.start_ns, total - 1);
        }
    }
}

//! The lock-free sharded span recorder.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled is (almost) free.** [`SpanRecorder::start`] loads one
//!    `AtomicBool` and returns an inert guard — no clock read, no id
//!    allocation, no allocation at all.
//! 2. **No global mutex on the hot path.** Each recording thread maps to
//!    one of a fixed set of shards; within a shard, writers claim ring
//!    slots with a `fetch_add` ticket and publish with a seqlock-style
//!    sequence word. Readers ([`SpanRecorder::collect`]) never block a
//!    writer; they discard any slot caught mid-write.
//! 3. **Bounded.** Each shard is a fixed ring; overflow overwrites the
//!    oldest records and is *counted* ([`SpanRecorder::dropped`]) so
//!    silent loss is observable (and exported as a metric by consumers).
//!
//! The one accepted imperfection: when a ring wraps, two writers racing
//! the *same slot* (tickets exactly one capacity apart, interleaved
//! within nanoseconds) can leave a mixed record that passes the sequence
//! check. That record is garbled but harmless — every field is its own
//! atomic, so there is no torn word and no unsafety. A recorder sized so
//! collection happens before wrap (the default 16k) never hits this.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::{SpanKind, SpanRecord};

/// Words per ring slot: seq, trace, span, parent, kind|worker, start, dur.
const SLOT_WORDS: usize = 7;

/// Shards available to writer threads. Fixed and modest: the point is to
/// split unrelated threads, not to scale to hundreds of cores.
const SHARDS: usize = 8;

type Slot = [AtomicU64; SLOT_WORDS];

fn empty_slot() -> Slot {
    std::array::from_fn(|_| AtomicU64::new(0))
}

struct Shard {
    /// Monotonic ticket counter; slot = ticket % capacity.
    cursor: AtomicU64,
    slots: Vec<Slot>,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard { cursor: AtomicU64::new(0), slots: (0..capacity).map(|_| empty_slot()).collect() }
    }

    fn write(&self, record: &SpanRecord) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // Seqlock stamp: odd = writing, even = complete. `fetch_max` on
        // the closing stamp keeps a lapped writer's stale "complete"
        // value from masking a newer in-progress write.
        slot[0].store(2 * ticket + 1, Ordering::SeqCst);
        slot[1].store(record.trace, Ordering::Relaxed);
        slot[2].store(record.span, Ordering::Relaxed);
        slot[3].store(record.parent, Ordering::Relaxed);
        slot[4].store(
            u64::from(record.kind as u8) | (u64::from(record.worker) << 8),
            Ordering::Relaxed,
        );
        slot[5].store(record.start_ns, Ordering::Relaxed);
        slot[6].store(record.dur_ns, Ordering::Relaxed);
        slot[0].fetch_max(2 * ticket + 2, Ordering::SeqCst);
    }

    fn read_into(&self, out: &mut Vec<SpanRecord>) {
        for slot in &self.slots {
            let before = slot[0].load(Ordering::SeqCst);
            // 0 = never written, odd = mid-write.
            if before == 0 || before % 2 == 1 {
                continue;
            }
            let trace = slot[1].load(Ordering::Relaxed);
            let span = slot[2].load(Ordering::Relaxed);
            let parent = slot[3].load(Ordering::Relaxed);
            let packed = slot[4].load(Ordering::Relaxed);
            let start_ns = slot[5].load(Ordering::Relaxed);
            let dur_ns = slot[6].load(Ordering::Relaxed);
            let after = slot[0].load(Ordering::SeqCst);
            if before != after {
                continue; // overwritten while reading
            }
            let Some(kind) = SpanKind::from_discriminant((packed & 0xff) as u8) else {
                continue;
            };
            out.push(SpanRecord {
                trace,
                span,
                parent,
                kind,
                worker: (packed >> 8) as u32,
                start_ns,
                dur_ns,
            });
        }
    }

    fn dropped(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed).saturating_sub(self.slots.len() as u64)
    }

    fn clear(&self) {
        self.cursor.store(0, Ordering::SeqCst);
        for slot in &self.slots {
            slot[0].store(0, Ordering::SeqCst);
        }
    }
}

/// Process-wide span-id allocator: ids are unique across every recorder
/// so merged exports never collide. 0 is reserved for "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide writer-thread token, cached per thread; `token % SHARDS`
/// picks the thread's shard without hashing `ThreadId` on every record.
static NEXT_THREAD_TOKEN: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_TOKEN: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn thread_token() -> usize {
    THREAD_TOKEN.with(|cell| {
        let mut token = cell.get();
        if token == usize::MAX {
            token = NEXT_THREAD_TOKEN.fetch_add(1, Ordering::Relaxed);
            cell.set(token);
        }
        token
    })
}

/// A bounded, lock-free flight recorder for [`SpanRecord`]s.
///
/// Construct once per process (or per server), share behind an `Arc`,
/// and hand [`crate::SpanScope`]s down the layers. Disabled by default —
/// call [`SpanRecorder::set_enabled`] to start recording.
pub struct SpanRecorder {
    enabled: AtomicBool,
    epoch: Instant,
    shards: Vec<Shard>,
    next_trace: AtomicU64,
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl SpanRecorder {
    /// A recorder retaining at most `capacity` spans (split across
    /// internal shards; minimum one slot per shard). Starts disabled.
    #[must_use]
    pub fn new(capacity: usize) -> SpanRecorder {
        let per_shard = (capacity / SHARDS).max(1);
        SpanRecorder {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            shards: (0..SHARDS).map(|_| Shard::new(per_shard)).collect(),
            next_trace: AtomicU64::new(1),
        }
    }

    /// Total spans the rings can retain.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.slots.len()).sum()
    }

    /// Turns recording on or off. Off is the default; when off,
    /// [`SpanRecorder::start`] and [`SpanRecorder::record`] are inert.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this recorder was constructed (the shared
    /// timeline for all of its spans).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Allocates a fresh trace id (monotonic, never 0).
    #[must_use]
    pub fn new_trace(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates a span id without recording anything — for call sites
    /// that must hand the id to children before the span's duration is
    /// known. Returns 0 when disabled.
    #[must_use]
    pub fn alloc_id(&self) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
    }

    /// Starts a span now; the returned guard records it on drop. When
    /// the recorder is disabled this is a single branch returning an
    /// inert guard whose [`SpanGuard::id`] is 0.
    pub fn start(
        self: &Arc<SpanRecorder>,
        trace: u64,
        parent: u64,
        kind: SpanKind,
        worker: u32,
    ) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { inner: None };
        }
        SpanGuard {
            inner: Some(GuardInner {
                recorder: Arc::clone(self),
                trace,
                parent,
                id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
                kind,
                worker,
                start_ns: self.now_ns(),
            }),
        }
    }

    /// Records a completed span with explicit timing, returning its id
    /// (0 when disabled — nothing is stored).
    pub fn record(
        &self,
        trace: u64,
        parent: u64,
        kind: SpanKind,
        worker: u32,
        start_ns: u64,
        dur_ns: u64,
    ) -> u64 {
        let id = self.alloc_id();
        self.record_with_id(id, trace, parent, kind, worker, start_ns, dur_ns);
        id
    }

    /// Records a completed span under a pre-allocated id (see
    /// [`SpanRecorder::alloc_id`]). A 0 id or a disabled recorder is a
    /// no-op.
    #[allow(clippy::too_many_arguments)]
    pub fn record_with_id(
        &self,
        id: u64,
        trace: u64,
        parent: u64,
        kind: SpanKind,
        worker: u32,
        start_ns: u64,
        dur_ns: u64,
    ) {
        if id == 0 || !self.is_enabled() {
            return;
        }
        let shard = &self.shards[thread_token() % self.shards.len()];
        shard.write(&SpanRecord { trace, span: id, parent, kind, worker, start_ns, dur_ns });
    }

    /// Non-destructive snapshot of every retained span, ordered by start
    /// time (ties broken by span id). Slots caught mid-write are skipped.
    #[must_use]
    pub fn collect(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.capacity().min(4096));
        for shard in &self.shards {
            shard.read_into(&mut out);
        }
        out.sort_by_key(|s| (s.start_ns, s.span));
        out
    }

    /// Spans overwritten because a ring wrapped (cumulative). Monotonic
    /// while the recorder lives; reset only by [`SpanRecorder::clear`].
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(Shard::dropped).sum()
    }

    /// Empties the rings and resets the drop count. Intended for
    /// benchmarks and tests between measurement windows; concurrent
    /// writers may leave a handful of fresh spans behind.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.clear();
        }
    }
}

struct GuardInner {
    recorder: Arc<SpanRecorder>,
    trace: u64,
    parent: u64,
    id: u64,
    kind: SpanKind,
    worker: u32,
    start_ns: u64,
}

/// An in-flight span; records itself on drop with the elapsed duration.
///
/// Inert (and cheap) when obtained from a disabled recorder.
#[must_use = "dropping the guard ends the span"]
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

impl SpanGuard {
    /// This span's id, for parenting children under it (0 when inert).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |g| g.id)
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            let dur = g.recorder.now_ns().saturating_sub(g.start_ns);
            g.recorder.record_with_id(g.id, g.trace, g.parent, g.kind, g.worker, g.start_ns, dur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing_and_allocates_nothing() {
        let rec = Arc::new(SpanRecorder::new(16));
        assert!(!rec.is_enabled());
        let guard = rec.start(1, 0, SpanKind::Run, 0);
        assert_eq!(guard.id(), 0);
        drop(guard);
        assert_eq!(rec.record(1, 0, SpanKind::Run, 0, 0, 10), 0);
        assert_eq!(rec.alloc_id(), 0);
        assert!(rec.collect().is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn guards_record_on_drop_with_elapsed_duration() {
        let rec = Arc::new(SpanRecorder::new(16));
        rec.set_enabled(true);
        let trace = rec.new_trace();
        let guard = rec.start(trace, 0, SpanKind::Parse, 2);
        let id = guard.id();
        assert_ne!(id, 0);
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(guard);
        let spans = rec.collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].span, id);
        assert_eq!(spans[0].kind, SpanKind::Parse);
        assert_eq!(spans[0].worker, 2);
        assert_eq!(spans[0].trace, trace);
        assert!(spans[0].dur_ns >= 500_000, "slept 1ms, recorded {}ns", spans[0].dur_ns);
    }

    #[test]
    fn ring_overflow_is_counted_not_blocking() {
        let rec = SpanRecorder::new(8); // one slot per shard
        rec.set_enabled(true);
        // All from one thread -> one shard -> wraps after 1 record.
        for i in 0..10 {
            rec.record(1, 0, SpanKind::Job, 0, i, 1);
        }
        assert_eq!(rec.dropped(), 9);
        let spans = rec.collect();
        assert_eq!(spans.len(), 1, "one slot retained");
        assert_eq!(spans[0].start_ns, 9, "the newest record survives");
        rec.clear();
        assert_eq!(rec.dropped(), 0);
        assert!(rec.collect().is_empty());
    }

    #[test]
    fn disabling_mid_span_drops_the_record() {
        let rec = Arc::new(SpanRecorder::new(16));
        rec.set_enabled(true);
        let guard = rec.start(1, 0, SpanKind::Run, 0);
        rec.set_enabled(false);
        drop(guard);
        assert!(rec.collect().is_empty());
    }

    #[test]
    fn collect_is_sorted_and_non_destructive() {
        let rec = SpanRecorder::new(64);
        rec.set_enabled(true);
        rec.record(1, 0, SpanKind::Run, 0, 30, 1);
        rec.record(1, 0, SpanKind::Run, 0, 10, 1);
        rec.record(1, 0, SpanKind::Run, 0, 20, 1);
        let starts: Vec<u64> = rec.collect().iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, [10, 20, 30]);
        assert_eq!(rec.collect().len(), 3, "collect does not drain");
    }

    #[test]
    fn trace_ids_are_distinct() {
        let rec = SpanRecorder::new(8);
        let a = rec.new_trace();
        let b = rec.new_trace();
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }
}

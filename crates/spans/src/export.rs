//! Span exporters: Chrome trace-event JSON and JSONL, plus the JSONL
//! importer.
//!
//! The Chrome format is the JSON *array form* of the trace-event spec —
//! a bare array of complete (`"ph": "X"`) events with microsecond
//! timestamps — which both Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing` load directly. JSONL is one span object per line
//! with raw nanosecond fields; [`from_jsonl`] parses it back so traces
//! can be saved, merged and re-exported.

use std::fmt::Write as _;

use lisa_metrics::json::{self, Value};

use crate::{SpanKind, SpanRecord};

/// Microseconds with three decimals from a nanosecond count, rendered
/// deterministically (no float formatting).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Renders spans as a Chrome trace-event JSON array (Perfetto-loadable).
///
/// Each span becomes one complete event: `ts`/`dur` in microseconds,
/// `pid` fixed at 1, `tid` the worker ordinal (so workers get timeline
/// lanes), and the trace/span/parent ids carried in `args`.
#[must_use]
pub fn to_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(spans.len() * 96 + 2);
    out.push('[');
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
             \"pid\": 1, \"tid\": {}, \
             \"args\": {{\"trace\": {}, \"span\": {}, \"parent\": {}}}}}",
            s.kind.as_str(),
            s.kind.category().as_str(),
            micros(s.start_ns),
            micros(s.dur_ns),
            s.worker,
            s.trace,
            s.span,
            s.parent,
        );
    }
    out.push_str("\n]\n");
    out
}

/// Renders one span as a JSON object (raw nanosecond fields). Used for
/// both JSONL lines and the `/v1/debug/spans` response.
#[must_use]
pub fn span_json(s: &SpanRecord) -> String {
    format!(
        "{{\"trace\": {}, \"span\": {}, \"parent\": {}, \"name\": \"{}\", \"cat\": \"{}\", \
         \"worker\": {}, \"start_ns\": {}, \"dur_ns\": {}}}",
        s.trace,
        s.span,
        s.parent,
        s.kind.as_str(),
        s.kind.category().as_str(),
        s.worker,
        s.start_ns,
        s.dur_ns,
    )
}

/// Renders spans as JSON lines (one object per line, trailing newline
/// when non-empty). Round-trips through [`from_jsonl`].
#[must_use]
pub fn to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(spans.len() * 96);
    for s in spans {
        out.push_str(&span_json(s));
        out.push('\n');
    }
    out
}

fn required_u64(obj: &Value, key: &str, line_no: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing or non-integer `{key}`"))
}

/// Parses a JSONL span document produced by [`to_jsonl`] (blank lines
/// ignored; the redundant `cat` field is ignored on input — it is
/// derived from the name).
///
/// # Errors
///
/// A message naming the first offending line.
pub fn from_jsonl(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let obj = json::parse(line).map_err(|e| format!("line {line_no}: bad JSON: {e}"))?;
        let name = obj
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {line_no}: missing or non-string `name`"))?;
        let kind = SpanKind::from_str(name)
            .ok_or_else(|| format!("line {line_no}: unknown span name `{name}`"))?;
        let worker = required_u64(&obj, "worker", line_no)?;
        let worker =
            u32::try_from(worker).map_err(|_| format!("line {line_no}: `worker` out of range"))?;
        out.push(SpanRecord {
            trace: required_u64(&obj, "trace", line_no)?,
            span: required_u64(&obj, "span", line_no)?,
            parent: required_u64(&obj, "parent", line_no)?,
            kind,
            worker,
            start_ns: required_u64(&obj, "start_ns", line_no)?,
            dur_ns: required_u64(&obj, "dur_ns", line_no)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                trace: 7,
                span: 1,
                parent: 0,
                kind: SpanKind::Accept,
                worker: 0,
                start_ns: 1_000,
                dur_ns: 2_500,
            },
            SpanRecord {
                trace: 7,
                span: 2,
                parent: 1,
                kind: SpanKind::QueueWait,
                worker: 1,
                start_ns: 3_500,
                dur_ns: 123_456_789,
            },
        ]
    }

    #[test]
    fn chrome_export_is_a_valid_json_array() {
        let text = to_chrome_trace(&sample());
        let value = json::parse(&text).expect("valid JSON");
        let events = value.as_array().expect("array form");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(events[0].get("name").and_then(Value::as_str), Some("accept"));
        assert_eq!(events[1].get("cat").and_then(Value::as_str), Some("queue"));
        assert_eq!(events[1].get("tid").and_then(Value::as_u64), Some(1));
        // 123_456_789 ns = 123456.789 us, rendered without float drift.
        assert_eq!(events[1].get("dur").and_then(Value::as_f64), Some(123_456.789));
        let args = events[1].get("args").expect("args");
        assert_eq!(args.get("parent").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn empty_exports_are_well_formed() {
        assert_eq!(json::parse(&to_chrome_trace(&[])).unwrap().as_array().unwrap().len(), 0);
        assert_eq!(to_jsonl(&[]), "");
        assert_eq!(from_jsonl("").unwrap(), Vec::new());
    }

    #[test]
    fn jsonl_round_trips() {
        let spans = sample();
        let text = to_jsonl(&spans);
        assert_eq!(text.lines().count(), 2);
        assert_eq!(from_jsonl(&text).unwrap(), spans);
        // Blank lines are tolerated.
        assert_eq!(from_jsonl(&format!("\n{text}\n")).unwrap(), spans);
    }

    #[test]
    fn importer_names_the_offending_line() {
        let good = span_json(&sample()[0]);
        let err = from_jsonl(&format!("{good}\nnot json\n")).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = from_jsonl("{\"name\": \"zeppelin\"}").unwrap_err();
        assert!(err.contains("unknown span name"), "{err}");
        let err = from_jsonl("{\"name\": \"run\"}").unwrap_err();
        assert!(err.contains("`worker`"), "{err}");
    }
}

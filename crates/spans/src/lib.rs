//! lisa-spans — cross-layer runtime span tracing.
//!
//! Counters (`lisa-metrics`) say *how much*; simulation events
//! (`lisa-trace`) say *what the machine did*; neither says **where the
//! wall-clock time of a request goes** across the serve → exec → sim
//! path. This crate fills that gap with a low-overhead span layer:
//!
//! * [`SpanRecorder`] — a sharded, lock-free, bounded flight recorder.
//!   Writers claim ring slots with an atomic ticket (`fetch_add`) and
//!   stamp each slot with a seqlock-style sequence word, so the hot path
//!   never touches a mutex and readers simply discard records caught
//!   mid-write. When disabled, [`SpanRecorder::start`] is a single
//!   atomic-bool branch — no clock read, no ID allocation.
//! * [`SpanKind`] — the closed vocabulary of span names. A closed enum
//!   (rather than free-form strings) keeps records fixed-size and `Copy`
//!   and makes the JSONL importer total.
//! * [`SpanScope`] — a `(recorder, trace, parent, worker)` bundle that
//!   layers hand to each other so one `/v1/simulate` request produces a
//!   single connected tree: `accept → queue_wait → request → parse →
//!   route → assemble → run → serialize → write`, with simulator phases
//!   (`predecode`, `cycle_chunk`) hanging under `run`.
//! * [`export`] — Chrome trace-event JSON (loadable in Perfetto or
//!   `chrome://tracing`) and JSONL, plus a JSONL importer that
//!   round-trips every record.
//!
//! The recorder is a *flight recorder*: collection is non-destructive,
//! capacity is bounded, and overflow is counted ([`SpanRecorder::dropped`])
//! rather than blocking the hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
mod recorder;

pub use recorder::{SpanGuard, SpanRecorder};

/// The layer a span belongs to, derived from its [`SpanKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// HTTP front end: connection and request lifecycle.
    Serve,
    /// Accept-queue mechanics: waits and lock holds.
    Queue,
    /// Batch execution: jobs and their scheduling.
    Exec,
    /// Simulator phases.
    Sim,
}

impl Category {
    /// Lower-case label used in exports (`"serve"`, `"queue"`, …).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Serve => "serve",
            Category::Queue => "queue",
            Category::Exec => "exec",
            Category::Sim => "sim",
        }
    }
}

/// The closed set of span names.
///
/// Closed on purpose: records stay `Copy` and fit in atomic ring slots,
/// and [`export::from_jsonl`] can map every name back without a string
/// table. Add a variant (and its `as_str`/`from_str` arm) to extend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// Acceptor-side handling of one new connection (tree root).
    Accept = 0,
    /// Time a connection sat in the bounded accept queue.
    QueueWait = 1,
    /// Mutex acquisition latency on the accept-queue push side.
    LockPush = 2,
    /// Mutex acquisition latency on the accept-queue pop side.
    LockPop = 3,
    /// A connection answered 503 because the queue was full.
    Shed = 4,
    /// Graceful drain: queue close until the workers finished.
    Drain = 5,
    /// One HTTP request, parse through write.
    Request = 6,
    /// Reading and parsing one request (first byte to parse success).
    Parse = 7,
    /// Routing and handling inside [`dispatch`](SpanKind::Route).
    Route = 8,
    /// Assembling the request's program.
    Assemble = 9,
    /// Running the simulation for a request or CLI invocation.
    Run = 10,
    /// Rendering the response body.
    Serialize = 11,
    /// Writing the response to the socket.
    Write = 12,
    /// One whole batch run.
    Batch = 13,
    /// One batch job, claim to completion.
    Job = 14,
    /// Time a batch job waited before a worker claimed it.
    JobQueueWait = 15,
    /// Pre-decoding program memory (compiled mode).
    Predecode = 16,
    /// A chunk of the cycle loop (every N control steps).
    CycleChunk = 17,
    /// Taking a simulator snapshot.
    Snapshot = 18,
    /// Restoring a simulator snapshot.
    Restore = 19,
}

impl SpanKind {
    /// Every kind, in discriminant order (used by the importer and
    /// property tests).
    pub const ALL: [SpanKind; 20] = [
        SpanKind::Accept,
        SpanKind::QueueWait,
        SpanKind::LockPush,
        SpanKind::LockPop,
        SpanKind::Shed,
        SpanKind::Drain,
        SpanKind::Request,
        SpanKind::Parse,
        SpanKind::Route,
        SpanKind::Assemble,
        SpanKind::Run,
        SpanKind::Serialize,
        SpanKind::Write,
        SpanKind::Batch,
        SpanKind::Job,
        SpanKind::JobQueueWait,
        SpanKind::Predecode,
        SpanKind::CycleChunk,
        SpanKind::Snapshot,
        SpanKind::Restore,
    ];

    /// Stable lower-case name used in every export format.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Accept => "accept",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::LockPush => "lock_push",
            SpanKind::LockPop => "lock_pop",
            SpanKind::Shed => "shed",
            SpanKind::Drain => "drain",
            SpanKind::Request => "request",
            SpanKind::Parse => "parse",
            SpanKind::Route => "route",
            SpanKind::Assemble => "assemble",
            SpanKind::Run => "run",
            SpanKind::Serialize => "serialize",
            SpanKind::Write => "write",
            SpanKind::Batch => "batch",
            SpanKind::Job => "job",
            SpanKind::JobQueueWait => "job_queue_wait",
            SpanKind::Predecode => "predecode",
            SpanKind::CycleChunk => "cycle_chunk",
            SpanKind::Snapshot => "snapshot",
            SpanKind::Restore => "restore",
        }
    }

    /// Inverse of [`SpanKind::as_str`] (not the `FromStr` trait: this
    /// is total over the closed vocabulary and infallible to call).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.iter().copied().find(|k| k.as_str() == name)
    }

    /// The layer this kind belongs to.
    #[must_use]
    pub fn category(self) -> Category {
        match self {
            SpanKind::Accept
            | SpanKind::Shed
            | SpanKind::Drain
            | SpanKind::Request
            | SpanKind::Parse
            | SpanKind::Route
            | SpanKind::Assemble
            | SpanKind::Run
            | SpanKind::Serialize
            | SpanKind::Write => Category::Serve,
            SpanKind::QueueWait | SpanKind::LockPush | SpanKind::LockPop => Category::Queue,
            SpanKind::Batch | SpanKind::Job | SpanKind::JobQueueWait => Category::Exec,
            SpanKind::Predecode | SpanKind::CycleChunk | SpanKind::Snapshot | SpanKind::Restore => {
                Category::Sim
            }
        }
    }

    pub(crate) fn from_discriminant(d: u8) -> Option<SpanKind> {
        SpanKind::ALL.get(d as usize).copied()
    }
}

/// One completed span, as read back from the recorder.
///
/// `start_ns` is relative to the recorder's construction instant, so
/// spans from one recorder share a timeline regardless of which thread
/// recorded them. `parent == 0` marks a tree root; `span` ids are
/// allocated from one global counter and never repeat within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to (one tree per trace).
    pub trace: u64,
    /// This span's unique id (never 0).
    pub span: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// What the span measures.
    pub kind: SpanKind,
    /// Worker/thread ordinal for timeline lanes (0 when not applicable).
    pub worker: u32,
    /// Start, in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A clonable tracing context handed across layers (serve → exec → sim).
///
/// Carries the recorder, the trace id, the parent span to attach
/// children to, and the worker ordinal. [`SpanScope::child`] re-parents
/// for the next level down.
#[derive(Debug, Clone)]
pub struct SpanScope {
    /// The destination recorder.
    pub recorder: std::sync::Arc<SpanRecorder>,
    /// Trace id for every span started through this scope.
    pub trace: u64,
    /// Parent span id new spans attach to (0 = root).
    pub parent: u64,
    /// Worker ordinal stamped on new spans.
    pub worker: u32,
}

impl SpanScope {
    /// A root scope on `recorder` for a fresh trace.
    #[must_use]
    pub fn new(recorder: std::sync::Arc<SpanRecorder>, trace: u64) -> SpanScope {
        SpanScope { recorder, trace, parent: 0, worker: 0 }
    }

    /// The same scope re-parented under `parent` (a span id returned by
    /// [`SpanGuard::id`] or [`SpanRecorder::record`]).
    #[must_use]
    pub fn child(&self, parent: u64) -> SpanScope {
        SpanScope { recorder: std::sync::Arc::clone(&self.recorder), parent, ..*self }
    }

    /// The same scope with a worker ordinal.
    #[must_use]
    pub fn with_worker(mut self, worker: u32) -> SpanScope {
        self.worker = worker;
        self
    }

    /// Starts a span under this scope's parent (inert when the recorder
    /// is disabled).
    pub fn start(&self, kind: SpanKind) -> SpanGuard {
        self.recorder.start(self.trace, self.parent, kind, self.worker)
    }

    /// Records an already-measured span under this scope's parent.
    /// Returns the span id (0 when disabled).
    pub fn record(&self, kind: SpanKind, start_ns: u64, dur_ns: u64) -> u64 {
        self.recorder.record(self.trace, self.parent, kind, self.worker, start_ns, dur_ns)
    }

    /// Whether the underlying recorder is currently enabled.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// Nanoseconds since the recorder's epoch.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.recorder.now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_str(kind.as_str()), Some(kind));
            assert!(seen.insert(kind.as_str()), "duplicate name {}", kind.as_str());
            assert_eq!(SpanKind::from_discriminant(kind as u8), Some(kind));
        }
        assert_eq!(SpanKind::from_str("nope"), None);
        assert_eq!(SpanKind::from_discriminant(200), None);
    }

    #[test]
    fn categories_cover_all_layers() {
        assert_eq!(SpanKind::QueueWait.category(), Category::Queue);
        assert_eq!(SpanKind::Job.category(), Category::Exec);
        assert_eq!(SpanKind::CycleChunk.category(), Category::Sim);
        assert_eq!(SpanKind::Request.category().as_str(), "serve");
    }

    #[test]
    fn scope_child_reparents_and_keeps_the_trace() {
        let rec = std::sync::Arc::new(SpanRecorder::new(64));
        rec.set_enabled(true);
        let trace = rec.new_trace();
        let scope = SpanScope::new(std::sync::Arc::clone(&rec), trace).with_worker(3);
        let root = scope.start(SpanKind::Batch);
        let child_scope = scope.child(root.id());
        assert_eq!(child_scope.trace, trace);
        assert_eq!(child_scope.parent, root.id());
        assert_eq!(child_scope.worker, 3);
        let job = child_scope.start(SpanKind::Job);
        let job_id = job.id();
        drop(job);
        drop(root);
        let spans = rec.collect();
        assert_eq!(spans.len(), 2);
        let job_rec = spans.iter().find(|s| s.span == job_id).expect("job recorded");
        assert_eq!(job_rec.worker, 3);
        assert_ne!(job_rec.parent, 0);
    }
}

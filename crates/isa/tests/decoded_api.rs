//! API-level tests for the decoded-operation tree: introspection helpers
//! and the encode error paths for hand-built trees.

use lisa_core::Model;
use lisa_isa::{Decoded, Decoder, IsaError};

fn model() -> Model {
    Model::from_source(
        r#"
        RESOURCE { CONTROL_REGISTER int ir; REGISTER int R[8]; }
        OPERATION reg {
            DECLARE { LABEL i; }
            CODING { i:0bx[3] }
            SYNTAX { "R" i:#u }
            EXPRESSION { R[i] }
        }
        OPERATION imm5 {
            DECLARE { LABEL v; }
            CODING { 0b1 v:0bx[4] }
            SYNTAX { v:#u }
        }
        OPERATION add {
            DECLARE { GROUP Dst, Src = { reg }; GROUP Val = { imm5 }; }
            CODING { 0b01 Dst Src Val }
            SYNTAX { "ADD" Dst "," Src "," Val:#u }
            BEHAVIOR { Dst = Src + Val; }
        }
        OPERATION decode {
            DECLARE { GROUP Instruction = { add }; }
            CODING { ir == Instruction }
            SYNTAX { Instruction }
            BEHAVIOR { Instruction; }
        }
        "#,
    )
    .expect("model builds")
}

#[test]
#[allow(clippy::unusual_byte_groupings)] // grouped by instruction field
fn node_count_and_group_choices() {
    let model = model();
    let decoder = Decoder::new(&model).expect("decoder");
    // ADD R3, R5, 9 → 01 011 101 1 1001.
    let word = 0b01_011_101_1_1001u128;
    let decoded = decoder.decode(word).expect("decodes");
    // Tree: decode → add → (reg, reg, imm5) = 5 nodes.
    assert_eq!(decoded.node_count(), 5);

    let add = decoded.children[0].as_deref().expect("add child");
    let choices = add.group_choices(&model);
    assert_eq!(choices.len(), 3);
    let reg = model.operation_by_name("reg").unwrap().id;
    let imm = model.operation_by_name("imm5").unwrap().id;
    assert_eq!(choices[0], Some(reg));
    assert_eq!(choices[1], Some(reg));
    assert_eq!(choices[2], Some(imm));

    assert_eq!(add.group_child(&model, 0).unwrap().labels[0], 3);
    assert_eq!(add.group_child(&model, 1).unwrap().labels[0], 5);
    assert_eq!(add.group_child(&model, 2).unwrap().labels[0], 9);
    assert!(add.group_child(&model, 7).is_none(), "out-of-range group");
}

#[test]
fn encode_rejects_label_overflow() {
    let model = model();
    let reg = model.operation_by_name("reg").unwrap();
    let mut decoded = Decoded::new(&model, reg.id, 0);
    decoded.labels[0] = 0b1111; // 4 bits into a 3-bit field
    let err = decoded.encode(&model).unwrap_err();
    assert!(matches!(err, IsaError::LabelValueTooWide { .. }), "{err}");
}

#[test]
fn encode_rejects_fixed_bit_conflict() {
    let model = model();
    let imm = model.operation_by_name("imm5").unwrap();
    // imm5's coding is `0b1 v:0bx[4]` — one field of 5 bits? No: two
    // fields. The label field itself is all-x, so any 4-bit value works;
    // conflict needs a pattern with fixed bits inside the label field.
    // Build such a model inline:
    let conflicted = Model::from_source(
        r#"
        OPERATION odd {
            DECLARE { LABEL v; }
            CODING { v:0b1xx }
            SYNTAX { "ODD" v:#u }
        }
        "#,
    )
    .expect("builds");
    let odd = conflicted.operation_by_name("odd").unwrap();
    let mut decoded = Decoded::new(&conflicted, odd.id, 0);
    decoded.labels[0] = 0b011; // top bit must be 1
    let err = decoded.encode(&conflicted).unwrap_err();
    assert!(matches!(err, IsaError::LabelFixedBitConflict { .. }), "{err}");
    decoded.labels[0] = 0b111;
    assert_eq!(decoded.encode(&conflicted).unwrap().to_u128(), 0b111);
    let _ = imm;
}

#[test]
fn encode_rejects_missing_children() {
    let model = model();
    let add = model.operation_by_name("add").unwrap();
    let decoded = Decoded::new(&model, add.id, 0); // no children filled
    let err = decoded.encode(&model).unwrap_err();
    assert!(matches!(err, IsaError::MalformedDecoded { missing: "an operand child", .. }));
}

#[test]
fn decoder_exposes_model_and_width() {
    let model = model();
    let decoder = Decoder::new(&model).expect("decoder");
    assert_eq!(decoder.word_width(), 13);
    assert!(std::ptr::eq(decoder.model(), &model));
    let root_op = model.operation(decoder.root());
    assert_eq!(root_op.name, "decode");
}

#[test]
fn decode_op_on_non_root_operations() {
    let model = model();
    let decoder = Decoder::new(&model).expect("decoder");
    let reg = model.operation_by_name("reg").unwrap().id;
    let decoded = decoder.decode_op(reg, 0b101).expect("decodes a bare operand");
    assert_eq!(decoded.labels[0], 0b101);
    // imm5 requires its fixed leading 1.
    let imm = model.operation_by_name("imm5").unwrap().id;
    assert!(decoder.decode_op(imm, 0b01111).is_none(), "fixed bit mismatch");
    assert!(decoder.decode_op(imm, 0b11111).is_some());
}

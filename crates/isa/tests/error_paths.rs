//! Error-path coverage for the generated instruction-set tools: bad
//! mnemonics, out-of-range operands, and undecodable or truncated code
//! words must surface as typed diagnostics with useful messages — never
//! as panics.

use lisa_core::Model;
use lisa_isa::{Assembler, Decoder, IsaError};
use lisa_models::Workbench;

fn all_workbenches() -> Vec<(&'static str, Workbench)> {
    vec![
        ("tinyrisc", lisa_models::tinyrisc::workbench().unwrap()),
        ("scalar2", lisa_models::scalar2::workbench().unwrap()),
        ("accu16", lisa_models::accu16::workbench().unwrap()),
        ("vliw62", lisa_models::vliw62::workbench().unwrap()),
    ]
}

#[test]
fn malformed_mnemonic_is_a_diagnostic() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let err = wb.assemble(&["FROB R1, R2"]).unwrap_err();
    assert_eq!(err.to_string(), "no instruction syntax matches `FROB R1, R2`");
}

#[test]
fn malformed_mnemonic_has_the_typed_variant() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let decoder = wb.decoder().unwrap();
    let asm = Assembler::new(wb.model(), &decoder);
    match asm.assemble_instruction("FROB R1, R2") {
        Err(IsaError::AsmNoMatch { statement }) => assert_eq!(statement, "FROB R1, R2"),
        other => panic!("expected AsmNoMatch, got {other:?}"),
    }
}

#[test]
fn out_of_range_operands_are_rejected_with_the_statement_named() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    // JMP's target field is 8 bits; 300 does not encode.
    let err = wb.assemble(&["JMP 300"]).unwrap_err();
    assert_eq!(err.to_string(), "no instruction syntax matches `JMP 300`");
    // The same statement with an encodable operand assembles fine.
    wb.assemble(&["JMP 30"]).expect("in-range target assembles");

    // LDI's immediate is 6-bit signed (-32..=31); -200 does not encode.
    let err = wb.assemble(&["LDI R1, -200"]).unwrap_err();
    assert_eq!(err.to_string(), "no instruction syntax matches `LDI R1, -200`");
    wb.assemble(&["LDI R1, -32"]).expect("in-range immediate assembles");

    // A register index beyond the register file.
    let err = wb.assemble(&["LDI R99, 1"]).unwrap_err();
    assert_eq!(err.to_string(), "no instruction syntax matches `LDI R99, 1`");
}

#[test]
fn trailing_input_after_a_match_is_reported() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let err = wb.assemble(&["HLT garbage"]).unwrap_err();
    assert_eq!(err.to_string(), "trailing input `garbage` after assembling `HLT garbage`");
}

#[test]
fn undecodable_word_reports_word_and_width() {
    let wb = lisa_models::tinyrisc::workbench().unwrap();
    let decoder = wb.decoder().unwrap();
    // Opcode 0b1110 is unassigned in tinyrisc.
    match decoder.decode(0xe000) {
        Err(IsaError::NoMatch { word, width }) => {
            assert_eq!(word, 0xe000);
            assert_eq!(width, 16);
        }
        other => panic!("expected NoMatch, got {other:?}"),
    }
    let message = decoder.decode(0xe000).unwrap_err().to_string();
    assert_eq!(message, "no instruction coding matches word 0xe000 (16 bits)");
}

#[test]
fn oversized_word_is_a_diagnostic_not_a_panic() {
    let wb = lisa_models::scalar2::workbench().unwrap();
    let decoder = wb.decoder().unwrap();
    let err = decoder.decode(u128::MAX).unwrap_err();
    assert!(err.to_string().contains("no instruction coding matches"), "unexpected message: {err}");
    assert!(err.to_string().contains("(32 bits)"), "width missing from: {err}");
}

#[test]
fn truncated_and_arbitrary_words_never_panic() {
    for (name, wb) in all_workbenches() {
        let decoder = wb.decoder().unwrap_or_else(|e| panic!("{name}: {e}"));
        // A truncated valid word (high bits cut off) and an exhaustive
        // 16-bit sweep: every outcome must be a value or a diagnostic.
        let halt = wb.assemble(&["HLT"]).or_else(|_| wb.assemble(&["HALT"])).unwrap()[0];
        let _ = decoder.decode(halt >> 16);
        let _ = decoder.decode(halt & 0xff);
        for word in 0..=0xffffu128 {
            let _ = decoder.decode(word);
        }
        let _ = decoder.decode(u128::MAX);
    }
}

#[test]
fn rootless_model_cannot_build_a_decoder() {
    let model = Model::from_source(
        r#"RESOURCE {
               PROGRAM_COUNTER int pc;
               CONTROL_REGISTER bit halt;
           }
           OPERATION main {
               BEHAVIOR { halt = 1; }
           }"#,
    )
    .expect("model builds");
    match Decoder::new(&model) {
        Err(IsaError::NoDecodeRoot) => {}
        other => panic!("expected NoDecodeRoot, got {other:?}"),
    }
    assert_eq!(
        Decoder::new(&model).unwrap_err().to_string(),
        "model has no decode root (`CODING { resource == group }`)"
    );
}

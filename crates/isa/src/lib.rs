//! Instruction-set tools generated from LISA model databases.
//!
//! The paper's retargetable environment derives an instruction decoder,
//! encoder, assembler and disassembler from the `CODING` and `SYNTAX`
//! sections of a LISA description (§3.2.1–§3.2.2). This crate implements
//! those generated tools over the [`lisa_core::Model`] database:
//!
//! * [`Decoder`] — matches instruction words against the coding tree,
//!   producing a [`Decoded`] operation tree with operand (label) values
//!   and selected group alternatives;
//! * [`Decoded::encode`] — the inverse: regenerates the instruction word
//!   ("During encoding, the same pattern is used to generate the
//!   respective instruction word");
//! * [`Assembler`] — matches assembly statements against syntax patterns
//!   and renders decoded instructions back to text, using the
//!   coding↔syntax label links as translation rules (paper Example 4:
//!   `ADD .D A4, A3, A15` ↔ binary).
//!
//! # Examples
//!
//! ```
//! use lisa_core::Model;
//! use lisa_isa::{Assembler, Decoder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = Model::from_source(r#"
//!     RESOURCE { CONTROL_REGISTER int ir; REGISTER int A[16]; }
//!     OPERATION register {
//!         DECLARE { LABEL index; }
//!         CODING { index:0bx[4] }
//!         SYNTAX { "A" index:#u }
//!         EXPRESSION { A[index] }
//!     }
//!     OPERATION add {
//!         DECLARE { GROUP Dest, Src1, Src2 = { register }; }
//!         CODING { 0b0001 Dest Src1 Src2 }
//!         SYNTAX { "ADD" Dest "," Src1 "," Src2 }
//!         BEHAVIOR { Dest = Src1 + Src2; }
//!     }
//!     OPERATION decode {
//!         DECLARE { GROUP Instruction = { add }; }
//!         CODING { ir == Instruction }
//!         SYNTAX { Instruction }
//!         BEHAVIOR { Instruction; }
//!     }
//! "#)?;
//! let decoder = Decoder::new(&model)?;
//! let asm = Assembler::new(&model, &decoder);
//!
//! let decoded = asm.assemble_instruction("ADD A3, A1, A2")?;
//! let word = decoded.encode(&model)?;
//! assert_eq!(word.to_u128(), 0b0001_0011_0001_0010);
//!
//! let back = decoder.decode(word.to_u128())?;
//! assert_eq!(asm.disassemble(&back), "ADD A3, A1, A2");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod decoded;
mod decoder;
mod error;

pub use asm::Assembler;
pub use decoded::Decoded;
pub use decoder::Decoder;
pub use error::IsaError;

//! Errors of the generated instruction-set tools.

use std::error::Error;
use std::fmt;

/// An error produced by the decoder, encoder, assembler or disassembler.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IsaError {
    /// The model has no decode root (`CODING { resource == group }`), so
    /// no decoder entry point exists.
    NoDecodeRoot,
    /// No operation coding matches the instruction word.
    NoMatch {
        /// The undecodable word.
        word: u128,
        /// The width that was attempted.
        width: u32,
    },
    /// An operation referenced during decode has no coding of the needed
    /// width (model validation normally prevents this).
    InternalWidth {
        /// The operation name.
        operation: String,
    },
    /// A label value does not fit the coding field reserved for it.
    LabelValueTooWide {
        /// The operation name.
        operation: String,
        /// The label name.
        label: String,
        /// The offending value.
        value: i128,
        /// Field width in bits.
        width: u32,
    },
    /// A label value conflicts with fixed bits inside its coding field.
    LabelFixedBitConflict {
        /// The operation name.
        operation: String,
        /// The label name.
        label: String,
        /// The offending value.
        value: u128,
    },
    /// No instruction syntax matches the assembly statement.
    AsmNoMatch {
        /// The statement that failed to assemble.
        statement: String,
    },
    /// An assembly statement matched an instruction but has trailing
    /// input.
    AsmTrailing {
        /// The statement.
        statement: String,
        /// The unconsumed suffix.
        rest: String,
    },
    /// A decoded tree is structurally inconsistent with the model (e.g. a
    /// group field without a child); indicates a hand-built tree.
    MalformedDecoded {
        /// The operation name.
        operation: String,
        /// What was missing.
        missing: &'static str,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::NoDecodeRoot => {
                write!(f, "model has no decode root (`CODING {{ resource == group }}`)")
            }
            IsaError::NoMatch { word, width } => {
                write!(f, "no instruction coding matches word {word:#x} ({width} bits)")
            }
            IsaError::InternalWidth { operation } => {
                write!(f, "operation `{operation}` has no usable coding width")
            }
            IsaError::LabelValueTooWide { operation, label, value, width } => {
                write!(
                    f,
                    "value {value} does not fit the {width}-bit field of label `{label}` in `{operation}`"
                )
            }
            IsaError::LabelFixedBitConflict { operation, label, value } => {
                write!(
                    f,
                    "value {value:#x} conflicts with fixed coding bits of label `{label}` in `{operation}`"
                )
            }
            IsaError::AsmNoMatch { statement } => {
                write!(f, "no instruction syntax matches `{statement}`")
            }
            IsaError::AsmTrailing { statement, rest } => {
                write!(f, "trailing input `{rest}` after assembling `{statement}`")
            }
            IsaError::MalformedDecoded { operation, missing } => {
                write!(f, "decoded tree for `{operation}` is missing {missing}")
            }
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_bounds() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<IsaError>();
        let err = IsaError::NoMatch { word: 0xdead, width: 32 };
        assert!(err.to_string().contains("0xdead"));
    }
}

//! The decoded-operation tree: the structured result of matching an
//! instruction word against the coding tree.

use std::sync::Arc;

use lisa_bits::Bits;
use lisa_core::model::{CodingTarget, Model, OpId};

use crate::IsaError;

/// A decoded operation instance: which operation (and which compile-time
/// variant) matched, the values of its label-bound operand fields, and the
/// decoded children filling its group/reference coding fields.
///
/// A `Decoded` is produced by [`crate::Decoder::decode`] and by
/// [`crate::Assembler::assemble_instruction`]; the simulator walks it to
/// evaluate behaviors, and [`Decoded::encode`] regenerates the instruction
/// word.
#[derive(Debug, Clone, PartialEq)]
pub struct Decoded {
    /// The matched operation.
    pub op: OpId,
    /// Index of the selected variant within the operation.
    pub variant: usize,
    /// Label values by label index (`0` for labels without a coding
    /// field).
    pub labels: Vec<u128>,
    /// Children aligned with the variant's coding fields (`None` for
    /// pattern/label fields). Shared subtrees (`Arc`) keep operand
    /// activation cheap on the simulator's cycle path.
    pub children: Vec<Option<Arc<Decoded>>>,
}

impl Decoded {
    /// Creates a decoded node for an operation, with label and child
    /// storage sized to the given variant.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range for the operation.
    #[must_use]
    pub fn new(model: &Model, op: OpId, variant: usize) -> Decoded {
        let operation = model.operation(op);
        let n_fields = operation.variants[variant].coding.as_ref().map_or(0, |c| c.fields.len());
        Decoded {
            op,
            variant,
            labels: vec![0; operation.labels.len()],
            children: vec![None; n_fields],
        }
    }

    /// The decoded child filling the coding field of local group `gidx`,
    /// if any.
    #[must_use]
    pub fn group_child(&self, model: &Model, gidx: usize) -> Option<&Decoded> {
        let coding = model.operation(self.op).variants[self.variant].coding.as_ref()?;
        coding
            .fields
            .iter()
            .zip(&self.children)
            .find(|(f, _)| matches!(f.target, CodingTarget::Group(g) if g == gidx))
            .and_then(|(_, c)| c.as_deref())
    }

    /// Like [`Decoded::group_child`], but returns the shared handle so
    /// callers can keep the subtree alive without a deep clone.
    #[must_use]
    pub fn group_child_rc(&self, model: &Model, gidx: usize) -> Option<Arc<Decoded>> {
        let coding = model.operation(self.op).variants[self.variant].coding.as_ref()?;
        coding
            .fields
            .iter()
            .zip(&self.children)
            .find(|(f, _)| matches!(f.target, CodingTarget::Group(g) if g == gidx))
            .and_then(|(_, c)| c.clone())
    }

    /// The member operation chosen for local group `gidx`, if decodable
    /// from the coding fields.
    #[must_use]
    pub fn group_choice(&self, model: &Model, gidx: usize) -> Option<OpId> {
        self.group_child(model, gidx).map(|c| c.op)
    }

    /// Group-member choices for all groups of the operation (used for
    /// variant selection).
    #[must_use]
    pub fn group_choices(&self, model: &Model) -> Vec<Option<OpId>> {
        let n = model.operation(self.op).groups.len();
        (0..n).map(|g| self.group_choice(model, g)).collect()
    }

    /// Regenerates the instruction word for this decoded tree.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::LabelValueTooWide`] or
    /// [`IsaError::LabelFixedBitConflict`] if a label value cannot be
    /// encoded, and [`IsaError::MalformedDecoded`] if a group/reference
    /// field has no child (hand-built trees only).
    pub fn encode(&self, model: &Model) -> Result<Bits, IsaError> {
        let operation = model.operation(self.op);
        let coding =
            operation.variants[self.variant].coding.as_ref().ok_or(IsaError::MalformedDecoded {
                operation: operation.name.clone(),
                missing: "a coding section",
            })?;
        let mut word = Bits::zero(coding.width());
        for (field, child) in coding.fields.iter().zip(&self.children) {
            let bits = match &field.target {
                CodingTarget::Pattern(p) => p.encode_zero_filled(),
                CodingTarget::Label { label, pattern } => {
                    let value = self.labels[*label];
                    if field.width < 128 && value >> field.width != 0 {
                        return Err(IsaError::LabelValueTooWide {
                            operation: operation.name.clone(),
                            label: operation.labels[*label].clone(),
                            value: value as i128,
                            width: field.width,
                        });
                    }
                    if !pattern.matches_u128(value) {
                        return Err(IsaError::LabelFixedBitConflict {
                            operation: operation.name.clone(),
                            label: operation.labels[*label].clone(),
                            value,
                        });
                    }
                    Bits::from_u128_wrapped(field.width, value)
                }
                CodingTarget::Group(_) | CodingTarget::Op(_) => {
                    let child = child.as_deref().ok_or_else(|| IsaError::MalformedDecoded {
                        operation: operation.name.clone(),
                        missing: "an operand child",
                    })?;
                    child.encode(model)?
                }
            };
            word = word
                .insert(field.offset, bits.resize_zext(field.width))
                .expect("field layout validated at model build");
        }
        Ok(word)
    }

    /// Total number of nodes in this decoded tree (diagnostics).
    #[must_use]
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().flatten().map(|c| c.node_count()).sum::<usize>()
    }
}

//! The generated assembler and disassembler (instruction level).
//!
//! "During assembly, the string pattern must match the provided assembly
//! statement to select a specific operation or resource. During
//! disassembly, the same pattern is used to generate the respective
//! assembly statement" (paper §3.2.1). The label links between coding and
//! syntax sections form the translation rules (paper Example 4).

use std::sync::Arc;

use lisa_core::ast::NumFormat;
use lisa_core::model::{CodingTarget, Model, OpId, SynElem};

use crate::{Decoded, Decoder, IsaError};

/// A retargetable instruction assembler/disassembler generated from a
/// model database.
#[derive(Debug, Clone)]
pub struct Assembler<'m> {
    model: &'m Model,
    decoder: &'m Decoder<'m>,
}

impl<'m> Assembler<'m> {
    /// Creates the assembler for a model, sharing the decoder's group
    /// orderings.
    #[must_use]
    pub fn new(model: &'m Model, decoder: &'m Decoder<'m>) -> Self {
        Assembler { model, decoder }
    }

    /// Assembles one statement (e.g. `ADD .D A4, A3, A15`) into a decoded
    /// instruction tree. Use [`Decoded::encode`] for the binary word.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::AsmNoMatch`] if no instruction syntax matches
    /// and [`IsaError::AsmTrailing`] if input remains after a match.
    pub fn assemble_instruction(&self, statement: &str) -> Result<Decoded, IsaError> {
        let mut cursor = Cursor::new(statement);
        let decoded = self
            .match_op(self.decoder.root(), &mut cursor)
            .ok_or_else(|| IsaError::AsmNoMatch { statement: statement.to_owned() })?;
        cursor.skip_ws();
        if !cursor.at_end() {
            return Err(IsaError::AsmTrailing {
                statement: statement.to_owned(),
                rest: cursor.rest().to_owned(),
            });
        }
        Ok(decoded)
    }

    /// Renders a decoded instruction back to canonical assembly text.
    #[must_use]
    pub fn disassemble(&self, decoded: &Decoded) -> String {
        let mut out = String::new();
        self.render(decoded, &mut out);
        out
    }

    // -- assembling ---------------------------------------------------------

    fn match_op(&self, op_id: OpId, cursor: &mut Cursor<'_>) -> Option<Decoded> {
        let operation = self.model.operation(op_id);
        for (vidx, variant) in operation.variants.iter().enumerate() {
            let Some(syntax) = &variant.syntax else { continue };
            let save = cursor.pos;
            if let Some(decoded) = self.try_syntax(op_id, vidx, syntax, cursor) {
                return Some(decoded);
            }
            cursor.pos = save;
        }
        None
    }

    fn try_syntax(
        &self,
        op_id: OpId,
        vidx: usize,
        syntax: &[SynElem],
        cursor: &mut Cursor<'_>,
    ) -> Option<Decoded> {
        let operation = self.model.operation(op_id);
        let mut state = MatchState {
            group_children: vec![None; operation.groups.len()],
            op_children: Vec::new(),
            labels: vec![0u128; operation.labels.len()],
        };
        if !self.match_elems(op_id, vidx, syntax, 0, cursor, &mut state) {
            return None;
        }
        self.finish_decoded(op_id, vidx, state.labels, state.group_children, state.op_children)
    }

    /// Matches syntax elements from `eidx` on, backtracking over group
    /// member choices: a member may match locally (e.g. an empty
    /// predicate) yet be wrong for the rest of the statement, in which
    /// case the next alternative is tried.
    fn match_elems(
        &self,
        op_id: OpId,
        vidx: usize,
        syntax: &[SynElem],
        eidx: usize,
        cursor: &mut Cursor<'_>,
        state: &mut MatchState,
    ) -> bool {
        let Some(elem) = syntax.get(eidx) else { return true };
        let operation = self.model.operation(op_id);
        let variant = &operation.variants[vidx];
        match elem {
            SynElem::Literal(text) => {
                let boundary = ends_alnum(text)
                    && !matches!(
                        syntax.get(eidx + 1),
                        Some(SynElem::Label { .. })
                            | Some(SynElem::Group { format: Some(_), .. })
                            | Some(SynElem::Op { format: Some(_), .. })
                    );
                cursor.match_literal(text, boundary)
                    && self.match_elems(op_id, vidx, syntax, eidx + 1, cursor, state)
            }
            SynElem::Label { label, format } => {
                let Some(width) = self.label_width(op_id, vidx, *label) else {
                    return false;
                };
                let Some(value) = cursor.parse_int(*format) else { return false };
                let Some(encoded) = encode_label(value, width, *format) else {
                    return false;
                };
                state.labels[*label] = encoded;
                self.match_elems(op_id, vidx, syntax, eidx + 1, cursor, state)
            }
            SynElem::Group { group, format: None } => {
                // Honour the guard: if this variant pins the member, only
                // that member's syntax may match.
                let required = variant.guard.iter().find(|(g, _)| g == group).map(|(_, m)| *m);
                let members: Vec<OpId> = operation.groups[*group]
                    .members
                    .iter()
                    .copied()
                    .filter(|m| required.is_none_or(|r| r == *m))
                    .collect();
                for member in members {
                    let save_pos = cursor.pos;
                    let save_state = state.clone();
                    if let Some(child) = self.match_op(member, cursor) {
                        state.group_children[*group] = Some(child);
                        if self.match_elems(op_id, vidx, syntax, eidx + 1, cursor, state) {
                            return true;
                        }
                    }
                    cursor.pos = save_pos;
                    *state = save_state;
                }
                false
            }
            SynElem::Group { group, format: Some(format) } => {
                let save_pos = cursor.pos;
                let Some(value) = cursor.parse_int(*format) else { return false };
                for member in operation.groups[*group].members.clone() {
                    let save_state = state.clone();
                    if let Some(child) = self.immediate_child(member, value, *format) {
                        state.group_children[*group] = Some(child);
                        if self.match_elems(op_id, vidx, syntax, eidx + 1, cursor, state) {
                            return true;
                        }
                    }
                    *state = save_state;
                }
                cursor.pos = save_pos;
                false
            }
            SynElem::Op { op, format: None } => {
                let save_pos = cursor.pos;
                let save_state = state.clone();
                if let Some(child) = self.match_op(*op, cursor) {
                    state.op_children.push((*op, child));
                    if self.match_elems(op_id, vidx, syntax, eidx + 1, cursor, state) {
                        return true;
                    }
                }
                cursor.pos = save_pos;
                *state = save_state;
                false
            }
            SynElem::Op { op, format: Some(format) } => {
                let save_pos = cursor.pos;
                let Some(value) = cursor.parse_int(*format) else { return false };
                if let Some(child) = self.immediate_child(*op, value, *format) {
                    state.op_children.push((*op, child));
                    if self.match_elems(op_id, vidx, syntax, eidx + 1, cursor, state) {
                        return true;
                    }
                    state.op_children.pop();
                }
                cursor.pos = save_pos;
                false
            }
        }
    }

    /// Builds the [`Decoded`] node once syntax matching bound all
    /// operands, synthesising children for coding fields that have no
    /// syntax counterpart (guard-pinned discriminators, reserved fields).
    fn finish_decoded(
        &self,
        op_id: OpId,
        vidx: usize,
        labels: Vec<u128>,
        group_children: Vec<Option<Decoded>>,
        mut op_children: Vec<(OpId, Decoded)>,
    ) -> Option<Decoded> {
        let operation = self.model.operation(op_id);
        let variant = &operation.variants[vidx];
        let mut decoded = Decoded::new(self.model, op_id, vidx);
        decoded.labels = labels;

        let Some(coding) = &variant.coding else {
            // Syntax-only operations (pure mnemonic sugar) keep empty
            // children; encoding requires a coding, so this only appears
            // as a sub-operand of something that never encodes it.
            return Some(decoded);
        };
        for (fidx, field) in coding.fields.iter().enumerate() {
            match &field.target {
                CodingTarget::Pattern(_) | CodingTarget::Label { .. } => {}
                CodingTarget::Group(g) => {
                    // The same group may fill several coding fields (e.g.
                    // an alias `MV d, s` encoding as `OR d, s, s`): each
                    // field gets the bound operand.
                    let child = match group_children[*g].clone() {
                        Some(c) => c,
                        None => {
                            // Guard-pinned member or single alternative.
                            let member = variant
                                .guard
                                .iter()
                                .find(|(gg, _)| gg == g)
                                .map(|(_, m)| *m)
                                .or_else(|| {
                                    (operation.groups[*g].members.len() == 1)
                                        .then(|| operation.groups[*g].members[0])
                                })?;
                            self.synthesize(member)?
                        }
                    };
                    decoded.children[fidx] = Some(Arc::new(child));
                }
                CodingTarget::Op(o) => {
                    let pos = op_children.iter().position(|(id, _)| id == o);
                    let child = match pos {
                        Some(pos) => op_children.remove(pos).1,
                        None => self.synthesize(*o)?,
                    };
                    decoded.children[fidx] = Some(Arc::new(child));
                }
            }
        }
        Some(decoded)
    }

    /// Builds a decoded node for an operation without consuming input:
    /// labels zero, group fields filled with their first synthesizable
    /// member. Used for discriminator sub-operations (paper Example 6's
    /// `side1`/`side2`) and reserved fields.
    fn synthesize(&self, op_id: OpId) -> Option<Decoded> {
        let operation = self.model.operation(op_id);
        let vidx = operation.variants.iter().position(|v| v.coding.is_some())?;
        let coding = operation.variants[vidx].coding.as_ref()?;
        let mut decoded = Decoded::new(self.model, op_id, vidx);
        for (fidx, field) in coding.fields.iter().enumerate() {
            match &field.target {
                CodingTarget::Pattern(_) | CodingTarget::Label { .. } => {}
                CodingTarget::Group(g) => {
                    let child =
                        operation.groups[*g].members.iter().find_map(|m| self.synthesize(*m))?;
                    decoded.children[fidx] = Some(Arc::new(child));
                }
                CodingTarget::Op(o) => {
                    decoded.children[fidx] = Some(Arc::new(self.synthesize(*o)?));
                }
            }
        }
        Some(decoded)
    }

    /// Builds a decoded node for an immediate-like operation whose sole
    /// label takes `value`.
    fn immediate_child(&self, op_id: OpId, value: i128, format: NumFormat) -> Option<Decoded> {
        let operation = self.model.operation(op_id);
        for (vidx, variant) in operation.variants.iter().enumerate() {
            let Some(coding) = &variant.coding else { continue };
            let label_field = coding.fields.iter().find_map(|f| match &f.target {
                CodingTarget::Label { label, .. } => Some((*label, f.width)),
                _ => None,
            });
            let Some((label, width)) = label_field else { continue };
            let Some(encoded) = encode_label(value, width, format) else { continue };
            let mut decoded = Decoded::new(self.model, op_id, vidx);
            decoded.labels[label] = encoded;
            // Any remaining operand fields must be synthesizable.
            let mut ok = true;
            for (fidx, field) in coding.fields.iter().enumerate() {
                match &field.target {
                    CodingTarget::Group(g) => {
                        match operation.groups[*g].members.iter().find_map(|m| self.synthesize(*m))
                        {
                            Some(child) => decoded.children[fidx] = Some(Arc::new(child)),
                            None => ok = false,
                        }
                    }
                    CodingTarget::Op(o) => match self.synthesize(*o) {
                        Some(child) => decoded.children[fidx] = Some(Arc::new(child)),
                        None => ok = false,
                    },
                    _ => {}
                }
            }
            if ok {
                return Some(decoded);
            }
        }
        None
    }

    fn label_width(&self, op_id: OpId, vidx: usize, label: usize) -> Option<u32> {
        let coding = self.model.operation(op_id).variants[vidx].coding.as_ref()?;
        coding.fields.iter().find_map(|f| match &f.target {
            CodingTarget::Label { label: l, .. } if *l == label => Some(f.width),
            _ => None,
        })
    }

    // -- disassembling --------------------------------------------------------

    fn render(&self, decoded: &Decoded, out: &mut String) {
        let operation = self.model.operation(decoded.op);
        let Some(syntax) = &operation.variants[decoded.variant].syntax else {
            return;
        };
        for elem in syntax {
            match elem {
                SynElem::Literal(text) => {
                    push_token(out, text, starts_glue(text));
                }
                SynElem::Label { label, format } => {
                    let width = self.label_width(decoded.op, decoded.variant, *label).unwrap_or(32);
                    let text = format_label(decoded.labels[*label], width, *format);
                    // Labels glue to a preceding register-letter literal
                    // ("A" ++ 4 → "A4").
                    push_token(out, &text, true);
                }
                SynElem::Group { group, format } => {
                    match (decoded.group_child(self.model, *group), format) {
                        (Some(child), None) => {
                            push_sub(out, &self.disassemble(child));
                        }
                        (Some(child), Some(format)) => {
                            let text = self.render_numeric_child(child, *format);
                            push_sub(out, &text);
                        }
                        (None, _) => {}
                    }
                }
                SynElem::Op { op, format } => {
                    // Find the child for this op reference among coding
                    // fields.
                    let child = operation.variants[decoded.variant].coding.as_ref().and_then(|c| {
                        c.fields.iter().zip(&decoded.children).find_map(|(f, ch)| match &f.target {
                            CodingTarget::Op(o) if o == op => ch.as_deref(),
                            _ => None,
                        })
                    });
                    if let Some(child) = child {
                        match format {
                            None => push_sub(out, &self.disassemble(child)),
                            Some(format) => {
                                let text = self.render_numeric_child(child, *format);
                                push_sub(out, &text);
                            }
                        }
                    }
                }
            }
        }
    }

    fn render_numeric_child(&self, child: &Decoded, format: NumFormat) -> String {
        let operation = self.model.operation(child.op);
        let coding = operation.variants[child.variant].coding.as_ref();
        let label_field = coding.and_then(|c| {
            c.fields.iter().find_map(|f| match &f.target {
                CodingTarget::Label { label, .. } => Some((*label, f.width)),
                _ => None,
            })
        });
        match label_field {
            Some((label, width)) => format_label(child.labels[label], width, format),
            None => self.disassemble(child),
        }
    }
}

// -- helpers ----------------------------------------------------------------

fn ends_alnum(s: &str) -> bool {
    s.trim_end().chars().last().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn starts_glue(s: &str) -> bool {
    matches!(s.trim_start().chars().next(), Some(',' | ';' | ':' | ')' | ']' | '['))
}

/// Appends a token with canonical spacing: a single space separator unless
/// the output is empty, the previous character opens a bracket, or the
/// token glues left.
fn push_token(out: &mut String, text: &str, glue_left: bool) {
    let text = text.trim();
    if text.is_empty() {
        return;
    }
    if !out.is_empty() && !glue_left && !out.ends_with(['(', '[', ' ']) {
        out.push(' ');
    }
    out.push_str(text);
}

/// Appends a sub-operand rendering (spaced like an ordinary token).
fn push_sub(out: &mut String, text: &str) {
    push_token(out, text, false);
}

fn format_label(value: u128, width: u32, format: NumFormat) -> String {
    match format {
        NumFormat::Unsigned => value.to_string(),
        NumFormat::Hex => format!("{value:#x}"),
        NumFormat::Signed => {
            let bits = lisa_bits::Bits::from_u128_wrapped(width.clamp(1, 128), value);
            bits.to_i128().to_string()
        }
    }
}

/// Validates and two's-complement-encodes a parsed number into a label
/// field of `width` bits.
fn encode_label(value: i128, width: u32, format: NumFormat) -> Option<u128> {
    if width == 0 || width > 128 {
        return None;
    }
    let fits = match format {
        NumFormat::Unsigned | NumFormat::Hex => {
            value >= 0 && (width == 128 || value < 1i128 << width)
        }
        NumFormat::Signed => {
            if width == 128 {
                true
            } else {
                let max = (1i128 << (width - 1)) - 1;
                // Accept the full unsigned range too, so `ADD …, 255`
                // works on an 8-bit field alongside `-1`.
                value >= -max - 1 && value < 1i128 << width
            }
        }
    };
    if !fits {
        return None;
    }
    Some(lisa_bits::Bits::from_i128_wrapped(width, value).to_u128())
}

/// Operand bindings accumulated while matching one operation's syntax.
#[derive(Debug, Clone)]
struct MatchState {
    group_children: Vec<Option<Decoded>>,
    op_children: Vec<(OpId, Decoded)>,
    labels: Vec<u128>,
}

/// A backtrackable text cursor for syntax matching.
#[derive(Debug)]
struct Cursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor { text, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.text.len()
    }

    fn skip_ws(&mut self) {
        let rest = self.rest();
        let trimmed = rest.trim_start();
        self.pos += rest.len() - trimmed.len();
    }

    /// Matches a syntax literal. Whitespace inside the literal matches any
    /// input whitespace; when `boundary` is set, an alphanumeric literal
    /// must not be followed by another identifier character (so `ADD`
    /// does not match the prefix of `ADDK`).
    fn match_literal(&mut self, literal: &str, boundary: bool) -> bool {
        for chunk in literal.split_whitespace() {
            self.skip_ws();
            if !self.rest().starts_with(chunk) {
                return false;
            }
            self.pos += chunk.len();
        }
        if boundary {
            if let Some(next) = self.rest().chars().next() {
                if next.is_ascii_alphanumeric() || next == '_' {
                    return false;
                }
            }
        }
        true
    }

    /// Parses an integer: optional sign (signed formats), `0x` hex or
    /// decimal.
    fn parse_int(&mut self, format: NumFormat) -> Option<i128> {
        self.skip_ws();
        let rest = self.rest();
        let mut chars = rest.char_indices().peekable();
        let mut idx = 0;
        let negative = if matches!(format, NumFormat::Signed) && rest.starts_with('-') {
            chars.next();
            idx = 1;
            true
        } else {
            false
        };
        let (radix, digits_start) =
            if rest[idx..].starts_with("0x") || rest[idx..].starts_with("0X") {
                (16, idx + 2)
            } else {
                (10, idx)
            };
        let digits_end = rest[digits_start..]
            .find(|c: char| !c.is_digit(radix) && c != '_')
            .map_or(rest.len(), |o| digits_start + o);
        if digits_end == digits_start {
            return None;
        }
        let digits: String = rest[digits_start..digits_end].chars().filter(|c| *c != '_').collect();
        let magnitude = i128::from_str_radix(&digits, radix).ok()?;
        self.pos += digits_end;
        Some(if negative { -magnitude } else { magnitude })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_core::Model;

    fn model() -> Model {
        Model::from_source(
            r#"
            RESOURCE { CONTROL_REGISTER int ir; REGISTER int A[16]; REGISTER int B[16]; }
            OPERATION side_a { CODING { 0b0 } SYNTAX { "a" } }
            OPERATION side_b { CODING { 0b1 } SYNTAX { "b" } }
            OPERATION register {
                DECLARE { GROUP Side = { side_a || side_b }; LABEL index; }
                CODING { Side index:0bx[4] }
                SWITCH (Side) {
                    CASE side_a: { SYNTAX { "A" index:#u } EXPRESSION { A[index] } }
                    CASE side_b: { SYNTAX { "B" index:#u } EXPRESSION { B[index] } }
                }
            }
            OPERATION imm8 {
                DECLARE { LABEL value; }
                CODING { value:0bx[8] }
                SYNTAX { value:#s }
            }
            OPERATION add {
                DECLARE { GROUP Dest, Src1, Src2 = { register }; }
                CODING { 0b0001 Dest Src1 Src2 0bx[9] }
                SYNTAX { "ADD" Dest "," Src1 "," Src2 }
                BEHAVIOR { Dest = Src1 + Src2; }
            }
            OPERATION addk {
                DECLARE { GROUP Dest = { register }; GROUP Imm = { imm8 }; }
                CODING { 0b0010 Dest Imm 0bx[11] }
                SYNTAX { "ADDK" Dest "," Imm:#s }
                BEHAVIOR { Dest = Dest + Imm; }
            }
            OPERATION decode {
                DECLARE { GROUP Instruction = { add || addk }; }
                CODING { ir == Instruction }
                SYNTAX { Instruction }
                BEHAVIOR { Instruction; }
            }
            "#,
        )
        .expect("model builds")
    }

    #[test]
    fn assembles_and_disassembles_canonically() {
        let model = model();
        let decoder = Decoder::new(&model).unwrap();
        let asm = Assembler::new(&model, &decoder);

        let decoded = asm.assemble_instruction("ADD B3, A1, B2").expect("assembles");
        let word = decoded.encode(&model).expect("encodes");
        let back = decoder.decode(word.to_u128()).expect("decodes");
        assert_eq!(asm.disassemble(&back), "ADD B3, A1, B2");
    }

    #[test]
    fn whitespace_and_case_of_digits_are_flexible() {
        let model = model();
        let decoder = Decoder::new(&model).unwrap();
        let asm = Assembler::new(&model, &decoder);
        let a = asm.assemble_instruction("ADD   B3 ,A1,   B2").unwrap();
        let b = asm.assemble_instruction("ADD B3, A1, B2").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mnemonic_boundary_prevents_prefix_matches() {
        let model = model();
        let decoder = Decoder::new(&model).unwrap();
        let asm = Assembler::new(&model, &decoder);
        // ADDK must not be parsed as ADD + garbage.
        let decoded = asm.assemble_instruction("ADDK A5, -3").expect("assembles addk");
        let op = model.operation(decoded.children[0].as_deref().unwrap().op);
        assert_eq!(op.name, "addk");
    }

    #[test]
    fn signed_immediates_round_trip() {
        let model = model();
        let decoder = Decoder::new(&model).unwrap();
        let asm = Assembler::new(&model, &decoder);
        for imm in [-128i64, -3, 0, 5, 127] {
            let stmt = format!("ADDK A5, {imm}");
            let decoded = asm.assemble_instruction(&stmt).expect("assembles");
            let word = decoded.encode(&model).unwrap();
            let back = decoder.decode(word.to_u128()).unwrap();
            assert_eq!(asm.disassemble(&back), stmt, "round trip of {imm}");
        }
    }

    #[test]
    fn bad_statements_fail_cleanly() {
        let model = model();
        let decoder = Decoder::new(&model).unwrap();
        let asm = Assembler::new(&model, &decoder);
        assert!(matches!(
            asm.assemble_instruction("FROB A1, A2"),
            Err(IsaError::AsmNoMatch { .. })
        ));
        assert!(matches!(
            asm.assemble_instruction("ADD A1, A2, A3 garbage"),
            Err(IsaError::AsmTrailing { .. })
        ));
        // Out-of-range register index: A16 needs 5 bits.
        assert!(asm.assemble_instruction("ADD A16, A1, A2").is_err());
        // Out-of-range immediate.
        assert!(asm.assemble_instruction("ADDK A5, 300").is_err());
    }

    #[test]
    fn cursor_parses_numbers() {
        let mut c = Cursor::new(" -42 0x1F 7");
        assert_eq!(c.parse_int(NumFormat::Signed), Some(-42));
        assert_eq!(c.parse_int(NumFormat::Unsigned), Some(0x1f));
        assert_eq!(c.parse_int(NumFormat::Unsigned), Some(7));
        assert_eq!(c.parse_int(NumFormat::Unsigned), None);
        // Unsigned formats reject a sign.
        let mut c = Cursor::new("-3");
        assert_eq!(c.parse_int(NumFormat::Unsigned), None);
    }

    #[test]
    fn encode_label_ranges() {
        assert_eq!(encode_label(5, 4, NumFormat::Unsigned), Some(5));
        assert_eq!(encode_label(-1, 4, NumFormat::Signed), Some(0xF));
        assert_eq!(encode_label(-8, 4, NumFormat::Signed), Some(8));
        assert_eq!(encode_label(16, 4, NumFormat::Unsigned), None);
        assert_eq!(encode_label(-9, 4, NumFormat::Signed), None);
        assert_eq!(encode_label(15, 4, NumFormat::Signed), Some(15));
    }
}

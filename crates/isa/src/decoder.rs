//! The generated instruction decoder.
//!
//! Decoding walks the coding tree: "During decoding, the bit pattern must
//! match the provided instruction word to select a specific operation or
//! resource" (paper §3.2.1). Group references try their alternatives in a
//! *preference order* precomputed at decoder-build time: non-alias
//! operations before aliases, more fixed (discriminating) bits first, then
//! declaration order — so disassembly naturally produces canonical forms
//! while alias encodings still decode.

use std::collections::HashMap;
use std::sync::Arc;

use lisa_core::model::{CodingTarget, Model, OpId};

use crate::{Decoded, IsaError};

/// A decoder generated from a model database.
///
/// Construction precomputes group trial orders (the "decoder generation"
/// step whose cost experiment E2 measures); [`Decoder::decode`] then
/// matches instruction words starting at the model's decode root.
#[derive(Debug, Clone)]
pub struct Decoder<'m> {
    model: &'m Model,
    /// Trial order for each (operation, group) pair.
    group_order: HashMap<(OpId, usize), Vec<OpId>>,
    root: OpId,
}

impl<'m> Decoder<'m> {
    /// Builds a decoder for the model.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::NoDecodeRoot`] if the model has no operation
    /// with a root compare in its coding.
    pub fn new(model: &'m Model) -> Result<Self, IsaError> {
        let root = *model.decode_roots().first().ok_or(IsaError::NoDecodeRoot)?;
        let mut group_order = HashMap::new();
        for op in model.operations() {
            for (gidx, group) in op.groups.iter().enumerate() {
                let mut order = group.members.clone();
                order.sort_by_key(|m| {
                    let member = model.operation(*m);
                    let fixed = member
                        .variants
                        .iter()
                        .filter_map(|v| v.coding.as_ref())
                        .map(|c| c.fixed_bits())
                        .max()
                        .unwrap_or(0);
                    // Non-alias first, most fixed bits first, stable on
                    // declaration order.
                    (member.alias, std::cmp::Reverse(fixed))
                });
                group_order.insert((op.id, gidx), order);
            }
        }
        Ok(Decoder { model, group_order, root })
    }

    /// The model this decoder was generated from.
    #[must_use]
    pub fn model(&self) -> &'m Model {
        self.model
    }

    /// The decode-root operation (the top of the coding tree).
    #[must_use]
    pub fn root(&self) -> OpId {
        self.root
    }

    /// The instruction word width expected at the decode root.
    ///
    /// # Panics
    ///
    /// Panics if the root operation has no coding (prevented by model
    /// validation).
    #[must_use]
    pub fn word_width(&self) -> u32 {
        self.model.operation(self.root).coding_width().expect("decode root has a coding")
    }

    /// Decodes an instruction word starting at the decode root.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::NoMatch`] if no coding matches.
    pub fn decode(&self, word: u128) -> Result<Decoded, IsaError> {
        self.decode_op(self.root, word)
            .ok_or_else(|| IsaError::NoMatch { word, width: self.word_width() })
    }

    /// Decodes a word against a specific operation (any coding-tree
    /// node), trying its variants most-specific-guard first.
    #[must_use]
    pub fn decode_op(&self, op_id: OpId, word: u128) -> Option<Decoded> {
        let operation = self.model.operation(op_id);
        for (vidx, variant) in operation.variants.iter().enumerate() {
            let Some(coding) = &variant.coding else { continue };
            if !coding.flat_pattern().matches_u128(word) {
                continue;
            }
            if let Some(decoded) = self.try_variant(op_id, vidx, word) {
                return Some(decoded);
            }
        }
        None
    }

    fn try_variant(&self, op_id: OpId, vidx: usize, word: u128) -> Option<Decoded> {
        let operation = self.model.operation(op_id);
        let variant = &operation.variants[vidx];
        let coding = variant.coding.as_ref()?;
        let mut decoded = Decoded::new(self.model, op_id, vidx);

        for (fidx, field) in coding.fields.iter().enumerate() {
            let sub = if field.width == 128 {
                word
            } else {
                word >> field.offset & ((1u128 << field.width) - 1)
            };
            match &field.target {
                CodingTarget::Pattern(p) => {
                    if !p.matches_u128(sub) {
                        return None;
                    }
                }
                CodingTarget::Label { label, pattern } => {
                    if !pattern.matches_u128(sub) {
                        return None;
                    }
                    decoded.labels[*label] = sub;
                }
                CodingTarget::Group(gidx) => {
                    // Honour the variant guard: if this variant requires a
                    // specific member for this group, only try that one.
                    let required = variant.guard.iter().find(|(g, _)| g == gidx).map(|(_, m)| *m);
                    let order = &self.group_order[&(op_id, *gidx)];
                    let child = order
                        .iter()
                        .filter(|m| required.is_none_or(|r| r == **m))
                        .find_map(|m| self.decode_op(*m, sub))?;
                    decoded.children[fidx] = Some(Arc::new(child));
                }
                CodingTarget::Op(target) => {
                    let child = self.decode_op(*target, sub)?;
                    decoded.children[fidx] = Some(Arc::new(child));
                }
            }
        }

        // Guards over groups that are not coding fields cannot be checked
        // from the word; such variants are selected structurally, which the
        // loop order (most-specific first) already handles.
        Some(decoded)
    }
}

#[cfg(test)]
#[allow(clippy::unusual_byte_groupings)] // grouped by instruction field, deliberately
mod tests {
    use super::*;
    use lisa_core::Model;

    fn paper_like_model() -> Model {
        Model::from_source(
            r#"
            RESOURCE {
                CONTROL_REGISTER int ir;
                REGISTER int A[16];
                REGISTER int B[16];
            }
            OPERATION side1 { CODING { 0b0 } SYNTAX { "1" } }
            OPERATION side2 { CODING { 0b1 } SYNTAX { "2" } }
            OPERATION register {
                DECLARE {
                    GROUP Side = { side1 || side2 };
                    LABEL index;
                }
                CODING { Side index:0bx[4] }
                SWITCH (Side) {
                    CASE side1: {
                        SYNTAX { "A" index:#u }
                        EXPRESSION { A[index] }
                    }
                    CASE side2: {
                        SYNTAX { "B" index:#u }
                        EXPRESSION { B[index] }
                    }
                }
            }
            OPERATION add {
                DECLARE { GROUP Dest, Src1, Src2 = { register }; }
                CODING { 0b00010 Dest Src1 Src2 0bx[12] }
                SYNTAX { "ADD" Dest "," Src1 "," Src2 }
                BEHAVIOR { Dest = Src1 + Src2; }
            }
            OPERATION sub {
                DECLARE { GROUP Dest, Src1, Src2 = { register }; }
                CODING { 0b00011 Dest Src1 Src2 0bx[12] }
                SYNTAX { "SUB" Dest "," Src1 "," Src2 }
                BEHAVIOR { Dest = Src1 - Src2; }
            }
            OPERATION nop {
                CODING { 0b00000 0bx[27] }
                SYNTAX { "NOP" }
                BEHAVIOR { }
            }
            OPERATION decode {
                DECLARE { GROUP Instruction = { add || sub || nop }; }
                CODING { ir == Instruction }
                SYNTAX { Instruction }
                BEHAVIOR { Instruction; }
            }
            "#,
        )
        .expect("model builds")
    }

    #[test]
    fn decodes_through_groups_and_switch_variants() {
        let model = paper_like_model();
        let decoder = Decoder::new(&model).unwrap();
        assert_eq!(decoder.word_width(), 32);

        // ADD B3, A1, B2: opcode 00010, Dest = side2(1)+idx3, Src1 =
        // side1(0)+idx1, Src2 = side2(1)+idx2, 12 free bits zero.
        let word: u128 = 0b00010_1_0011_0_0001_1_0010_000000000000;
        let decoded = decoder.decode(word).expect("decodes");
        let root_op = model.operation(decoded.op);
        assert_eq!(root_op.name, "decode");
        let instr = decoded.children[0].as_deref().expect("instruction child");
        assert_eq!(model.operation(instr.op).name, "add");

        let dest = instr.group_child(&model, 0).expect("dest");
        assert_eq!(model.operation(dest.op).name, "register");
        assert_eq!(dest.labels[0], 3);
        // Dest selected side2 → the side2-guarded variant.
        let side = dest.group_child(&model, 0).expect("side");
        assert_eq!(model.operation(side.op).name, "side2");
        let variant = &model.operation(dest.op).variants[dest.variant];
        assert!(!variant.guard.is_empty(), "specialised variant selected");

        let src1 = instr.group_child(&model, 1).expect("src1");
        assert_eq!(src1.labels[0], 1);
        assert_eq!(model.operation(src1.group_child(&model, 0).unwrap().op).name, "side1");
    }

    #[test]
    fn decode_encode_round_trip() {
        let model = paper_like_model();
        let decoder = Decoder::new(&model).unwrap();
        for word in [
            0b00010_1_0011_0_0001_1_0010_000000000000u128,
            0b00011_0_1111_0_0000_1_1111_000000000000u128,
            0u128, // NOP
        ] {
            let decoded = decoder.decode(word).expect("decodes");
            let encoded = decoded.encode(&model).expect("encodes");
            assert_eq!(encoded.to_u128(), word, "round trip for {word:#034b}");
        }
    }

    #[test]
    fn undecodable_word_is_an_error() {
        let model = paper_like_model();
        let decoder = Decoder::new(&model).unwrap();
        // Opcode 11111 matches no instruction.
        let err = decoder.decode(0b11111 << 27).unwrap_err();
        assert!(matches!(err, IsaError::NoMatch { .. }));
    }

    #[test]
    fn model_without_root_has_no_decoder() {
        let model =
            Model::from_source("OPERATION lonely { CODING { 0b1 } SYNTAX { \"L\" } }").unwrap();
        assert!(matches!(Decoder::new(&model), Err(IsaError::NoDecodeRoot)));
    }

    #[test]
    fn aliases_decode_to_canonical_form() {
        let model = Model::from_source(
            r#"
            RESOURCE { CONTROL_REGISTER int ir; REGISTER int R[4]; }
            OPERATION reg {
                DECLARE { LABEL i; }
                CODING { i:0bx[2] }
                SYNTAX { "R" i:#u }
                EXPRESSION { R[i] }
            }
            OPERATION or_op {
                DECLARE { GROUP D, S1, S2 = { reg }; }
                CODING { 0b01 D S1 S2 }
                SYNTAX { "OR" D "," S1 "," S2 }
                BEHAVIOR { D = S1 | S2; }
            }
            OPERATION mv ALIAS {
                DECLARE { GROUP D, S = { reg }; }
                CODING { 0b01 D S S }
                SYNTAX { "MV" D "," S }
            }
            OPERATION decode {
                DECLARE { GROUP Instruction = { or_op || mv }; }
                CODING { ir == Instruction }
                SYNTAX { Instruction }
                BEHAVIOR { Instruction; }
            }
            "#,
        )
        .expect("model builds");
        let decoder = Decoder::new(&model).unwrap();
        // `MV R1, R2` encodes as OR R1, R2, R2; decode prefers the
        // non-alias canonical operation.
        let word = 0b01_01_10_10u128;
        let decoded = decoder.decode(word).unwrap();
        let instr = decoded.children[0].as_deref().unwrap();
        assert_eq!(model.operation(instr.op).name, "or_op");
    }
}

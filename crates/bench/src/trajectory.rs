//! Machine-readable benchmark trajectories and regression gating.
//!
//! `lisa-tool bench` runs the standard kernel suites on every builtin
//! model in every simulation backend and serializes the result as a
//! schema-versioned JSON document (`BENCH_<date>.json`). Checked-in
//! baselines plus [`compare`] turn those documents into a perf-regression
//! gate: a run whose simulated-MIPS drops more than a threshold below the
//! baseline fails CI.
//!
//! Wall-clock fields are integers (microseconds), so a document
//! round-trips through [`BenchReport::to_json`] / [`BenchReport::from_json`]
//! exactly; derived rates (MIPS, cycles/s) are computed, never stored.

use std::time::Instant;

use lisa_metrics::{json, Registry};
use lisa_models::kernels::{self, Kernel};
use lisa_models::Workbench;
use lisa_sim::SimMode;

/// Document schema identifier; bump on breaking field changes.
pub const SCHEMA: &str = "lisa-bench/1";

/// Wall-clock spread over the repeats of one cell, in microseconds
/// (nearest-rank percentiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantiles {
    /// Fastest repeat.
    pub min_us: u64,
    /// Median repeat.
    pub p50_us: u64,
    /// 99th-percentile repeat.
    pub p99_us: u64,
    /// Slowest repeat.
    pub max_us: u64,
}

impl Quantiles {
    /// Nearest-rank quantiles of a set of repeat durations.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice (a cell always has at least one repeat).
    #[must_use]
    pub fn of(durations_us: &[u64]) -> Quantiles {
        assert!(!durations_us.is_empty(), "at least one repeat per cell");
        let mut sorted = durations_us.to_vec();
        sorted.sort_unstable();
        let rank = |q: f64| {
            let n = sorted.len();
            sorted[((q * n as f64).ceil() as usize).clamp(1, n) - 1]
        };
        Quantiles {
            min_us: sorted[0],
            p50_us: rank(0.50),
            p99_us: rank(0.99),
            max_us: *sorted.last().expect("non-empty"),
        }
    }
}

/// One model × backend × kernel measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRow {
    /// Builtin model name.
    pub model: String,
    /// Backend label (`"interpretive"` / `"compiled"` / `"ops"`).
    pub backend: String,
    /// Kernel name.
    pub kernel: String,
    /// Simulated control steps per run (backend-independent).
    pub cycles: u64,
    /// Instructions retired per run.
    pub instructions: u64,
    /// Wall-clock spread over the repeats.
    pub wall_us: Quantiles,
}

impl BenchRow {
    /// Simulated MIPS of the best repeat: millions of retired
    /// instructions per wall-clock second.
    #[must_use]
    pub fn mips(&self) -> f64 {
        if self.wall_us.min_us == 0 {
            0.0
        } else {
            self.instructions as f64 / self.wall_us.min_us as f64
        }
    }

    /// Simulation speed of the best repeat in cycles/second.
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_us.min_us == 0 {
            0.0
        } else {
            self.cycles as f64 * 1e6 / self.wall_us.min_us as f64
        }
    }

    fn key(&self) -> (&str, &str, &str) {
        (&self.model, &self.backend, &self.kernel)
    }
}

/// A full benchmark run: every builtin model × all three backends × its
/// kernel suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// Civil date (UTC) the run was taken, `YYYY-MM-DD`.
    pub date: String,
    /// Repeats per cell (best/percentiles are over these).
    pub repeats: u32,
    /// Whether the reduced quick suite was used.
    pub quick: bool,
    /// Measurements, in deterministic model/backend/kernel order.
    pub rows: Vec<BenchRow>,
}

/// One baseline-versus-current regression found by [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Model of the regressed cell.
    pub model: String,
    /// Backend of the regressed cell.
    pub backend: String,
    /// Kernel of the regressed cell.
    pub kernel: String,
    /// Baseline simulated MIPS (0.0 when the cell is missing from the
    /// current run).
    pub baseline_mips: f64,
    /// Current simulated MIPS.
    pub current_mips: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.current_mips == 0.0 && self.baseline_mips == 0.0 {
            return write!(
                f,
                "{}/{}/{}: missing from current run",
                self.model, self.backend, self.kernel
            );
        }
        write!(
            f,
            "{}/{}/{}: {:.3} MIPS vs baseline {:.3} MIPS ({:+.1}%)",
            self.model,
            self.backend,
            self.kernel,
            self.current_mips,
            self.baseline_mips,
            (self.current_mips / self.baseline_mips - 1.0) * 100.0,
        )
    }
}

/// The builtin models paired with their kernel suites, in report order.
fn model_suites(quick: bool) -> Vec<(&'static str, Workbench, Vec<Kernel>)> {
    let mut suites = vec![
        ("vliw62", lisa_models::vliw62::workbench().expect("builds"), kernels::vliw_suite()),
        ("accu16", lisa_models::accu16::workbench().expect("builds"), kernels::accu_suite()),
        ("scalar2", lisa_models::scalar2::workbench().expect("builds"), kernels::scalar_suite()),
        ("tinyrisc", lisa_models::tinyrisc::workbench().expect("builds"), kernels::tiny_suite()),
    ];
    if quick {
        for (_, _, kernels) in &mut suites {
            kernels.truncate(1);
        }
    }
    suites
}

/// Runs the benchmark matrix: every builtin model × all three backends ×
/// its kernel suite, `repeats` timed runs per cell.
///
/// When `metrics` is given, each simulator publishes its stats into the
/// registry (`lisa_sim_*` series) and per-cell wall clocks land in the
/// `lisa_bench_cell_duration_us` histogram.
///
/// # Panics
///
/// Panics if a builtin model or kernel is broken (covered by tier-1
/// tests).
#[must_use]
pub fn measure(quick: bool, repeats: u32, metrics: Option<&Registry>) -> BenchReport {
    let repeats = repeats.max(1);
    let mut rows = Vec::new();
    for (model, wb, suite) in model_suites(quick) {
        for mode in [SimMode::Interpretive, SimMode::Compiled, SimMode::Ops] {
            let backend = mode.metric_label();
            for kernel in &suite {
                let mut durations_us = Vec::with_capacity(repeats as usize);
                let mut cycles = 0u64;
                let mut instructions = 0u64;
                for _ in 0..repeats {
                    let mut sim = kernels::load_kernel(&wb, kernel, mode).expect("kernel loads");
                    let t = Instant::now();
                    cycles = wb.run_to_halt(&mut sim, kernel.max_steps).expect("kernel halts");
                    let elapsed = t.elapsed();
                    kernels::verify_kernel(&wb, kernel, &sim);
                    instructions = sim.stats().instructions_retired;
                    let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
                    durations_us.push(us.max(1));
                    if let Some(reg) = metrics {
                        sim.publish_metrics(reg);
                        reg.histogram(
                            "lisa_bench_cell_duration_us",
                            "Wall-clock kernel run duration in microseconds.",
                            &[("model", model), ("backend", backend), ("kernel", &kernel.name)],
                        )
                        .observe(us);
                    }
                }
                rows.push(BenchRow {
                    model: model.to_owned(),
                    backend: backend.to_owned(),
                    kernel: kernel.name.clone(),
                    cycles,
                    instructions,
                    wall_us: Quantiles::of(&durations_us),
                });
            }
        }
    }
    BenchReport { date: today_utc(), repeats, quick, rows }
}

impl BenchReport {
    /// Serializes to the `lisa-bench/1` JSON document (deterministic
    /// field and row order, integer wall clocks).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json::escape(SCHEMA)));
        out.push_str(&format!("  \"date\": {},\n", json::escape(&self.date)));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"model\": {}, ", json::escape(&row.model)));
            out.push_str(&format!("\"backend\": {}, ", json::escape(&row.backend)));
            out.push_str(&format!("\"kernel\": {}, ", json::escape(&row.kernel)));
            out.push_str(&format!("\"cycles\": {}, ", row.cycles));
            out.push_str(&format!("\"instructions\": {}, ", row.instructions));
            out.push_str(&format!(
                "\"wall_us\": {{\"min\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}, ",
                row.wall_us.min_us, row.wall_us.p50_us, row.wall_us.p99_us, row.wall_us.max_us
            ));
            out.push_str(&format!(
                "\"mips\": {:.4}, \"cycles_per_sec\": {:.1}}}",
                row.mips(),
                row.cycles_per_sec()
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a `lisa-bench/1` document.
    ///
    /// # Errors
    ///
    /// Malformed JSON, an unknown schema, or missing fields.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let doc = json::parse(text)?;
        let schema = doc.get("schema").and_then(json::Value::as_str).unwrap_or("<missing>");
        if schema != SCHEMA {
            return Err(format!("unsupported bench schema `{schema}` (expected `{SCHEMA}`)"));
        }
        let date =
            doc.get("date").and_then(json::Value::as_str).ok_or("missing `date`")?.to_owned();
        let repeats = doc
            .get("repeats")
            .and_then(json::Value::as_u64)
            .and_then(|r| u32::try_from(r).ok())
            .ok_or("missing `repeats`")?;
        let quick = doc.get("quick").and_then(json::Value::as_bool).ok_or("missing `quick`")?;
        let rows = doc
            .get("rows")
            .and_then(json::Value::as_array)
            .ok_or("missing `rows`")?
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let field_str = |name: &str| {
                    row.get(name)
                        .and_then(json::Value::as_str)
                        .map(str::to_owned)
                        .ok_or(format!("row {i}: missing `{name}`"))
                };
                let field_u64 = |v: &json::Value, name: &str| {
                    v.get(name)
                        .and_then(json::Value::as_u64)
                        .ok_or(format!("row {i}: missing `{name}`"))
                };
                let wall = row.get("wall_us").ok_or(format!("row {i}: missing `wall_us`"))?;
                Ok(BenchRow {
                    model: field_str("model")?,
                    backend: field_str("backend")?,
                    kernel: field_str("kernel")?,
                    cycles: field_u64(row, "cycles")?,
                    instructions: field_u64(row, "instructions")?,
                    wall_us: Quantiles {
                        min_us: field_u64(wall, "min")?,
                        p50_us: field_u64(wall, "p50")?,
                        p99_us: field_u64(wall, "p99")?,
                        max_us: field_u64(wall, "max")?,
                    },
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchReport { date, repeats, quick, rows })
    }

    /// A plain-text summary table, one row per cell.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = format!(
            "{:<9} {:<13} {:<18} {:>9} {:>12} {:>12} {:>9}\n",
            "model", "backend", "kernel", "cycles", "cycles/s", "best (µs)", "MIPS"
        );
        out.push_str(&"-".repeat(88));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!(
                "{:<9} {:<13} {:<18} {:>9} {:>12.0} {:>12} {:>9.3}\n",
                row.model,
                row.backend,
                row.kernel,
                row.cycles,
                row.cycles_per_sec(),
                row.wall_us.min_us,
                row.mips()
            ));
        }
        out
    }
}

/// Compares a current run against a baseline: every baseline cell whose
/// simulated MIPS dropped by more than `threshold_pct` percent (or that
/// vanished from the current run) is a [`Regression`]. Cells only in the
/// current run are ignored — new kernels aren't regressions.
#[must_use]
pub fn compare(
    current: &BenchReport,
    baseline: &BenchReport,
    threshold_pct: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for base in &baseline.rows {
        let regression = |current_mips: f64| Regression {
            model: base.model.clone(),
            backend: base.backend.clone(),
            kernel: base.kernel.clone(),
            baseline_mips: base.mips(),
            current_mips,
        };
        match current.rows.iter().find(|r| r.key() == base.key()) {
            None => regressions.push(Regression { baseline_mips: 0.0, ..regression(0.0) }),
            Some(now) => {
                if now.mips() < base.mips() * (1.0 - threshold_pct / 100.0) {
                    regressions.push(regression(now.mips()));
                }
            }
        }
    }
    regressions
}

/// Today's UTC civil date as `YYYY-MM-DD`, from the system clock
/// (no external date dependency; days-to-civil per Howard Hinnant's
/// public-domain algorithm).
#[must_use]
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            date: "2026-08-06".to_owned(),
            repeats: 3,
            quick: true,
            rows: vec![
                BenchRow {
                    model: "tinyrisc".into(),
                    backend: "compiled".into(),
                    kernel: "fib".into(),
                    cycles: 1000,
                    instructions: 500,
                    wall_us: Quantiles { min_us: 100, p50_us: 120, p99_us: 150, max_us: 150 },
                },
                BenchRow {
                    model: "tinyrisc".into(),
                    backend: "interpretive".into(),
                    kernel: "fib".into(),
                    cycles: 1000,
                    instructions: 500,
                    wall_us: Quantiles { min_us: 400, p50_us: 420, p99_us: 500, max_us: 500 },
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample();
        let back = BenchReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(back, report);
        // And the re-serialization is byte-identical (deterministic).
        assert_eq!(back.to_json(), report.to_json());
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let doc = sample().to_json().replace(SCHEMA, "lisa-bench/99");
        let err = BenchReport::from_json(&doc).expect_err("wrong schema");
        assert!(err.contains("lisa-bench/99"), "{err}");
        assert!(BenchReport::from_json("{not json").is_err());
    }

    #[test]
    fn derived_rates_come_from_best_repeat() {
        let report = sample();
        // 500 instructions in 100 µs = 5 MIPS; 1000 cycles in 100 µs = 1e7 c/s.
        assert!((report.rows[0].mips() - 5.0).abs() < 1e-12);
        assert!((report.rows[0].cycles_per_sec() - 1e7).abs() < 1e-3);
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let q = Quantiles::of(&[40, 10, 30, 20]);
        assert_eq!(q, Quantiles { min_us: 10, p50_us: 20, p99_us: 40, max_us: 40 });
        let single = Quantiles::of(&[7]);
        assert_eq!(single, Quantiles { min_us: 7, p50_us: 7, p99_us: 7, max_us: 7 });
    }

    #[test]
    fn compare_flags_slowdowns_and_missing_cells() {
        let baseline = sample();
        assert!(compare(&baseline, &baseline, 10.0).is_empty(), "self-compare is clean");

        // 5x slowdown on the compiled cell: well past any threshold.
        let mut slow = baseline.clone();
        slow.rows[0].wall_us.min_us *= 5;
        let regs = compare(&slow, &baseline, 10.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].kernel, "fib");
        assert_eq!(regs[0].backend, "compiled");
        assert!(regs[0].to_string().contains("MIPS vs baseline"), "{}", regs[0]);

        // A small wobble under the threshold is not a regression.
        let mut wobble = baseline.clone();
        wobble.rows[0].wall_us.min_us += 5; // 100 -> 105 µs ≈ -4.8%
        assert!(compare(&wobble, &baseline, 10.0).is_empty());

        // A cell missing from the current run is flagged.
        let mut missing = baseline.clone();
        missing.rows.remove(1);
        let regs = compare(&missing, &baseline, 10.0);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].to_string().contains("missing"), "{}", regs[0]);

        // Extra cells in the current run are fine.
        assert!(compare(&baseline, &missing, 10.0).is_empty());
    }

    #[test]
    fn today_utc_is_a_plausible_civil_date() {
        let date = today_utc();
        assert_eq!(date.len(), 10, "{date}");
        let parts: Vec<&str> = date.split('-').collect();
        assert_eq!(parts.len(), 3, "{date}");
        let year: i64 = parts[0].parse().expect("year");
        let month: u32 = parts[1].parse().expect("month");
        let day: u32 = parts[2].parse().expect("day");
        assert!(year >= 2024, "{date}");
        assert!((1..=12).contains(&month), "{date}");
        assert!((1..=31).contains(&day), "{date}");
    }

    #[test]
    fn quick_measurement_covers_all_models_and_all_backends() {
        let reg = Registry::new();
        let report = measure(true, 1, Some(&reg));
        assert!(report.quick);
        for model in ["vliw62", "accu16", "scalar2", "tinyrisc"] {
            for backend in ["interpretive", "compiled", "ops"] {
                assert!(
                    report.rows.iter().any(|r| r.model == model && r.backend == backend),
                    "missing {model}/{backend}"
                );
            }
        }
        for row in &report.rows {
            assert!(row.cycles > 0, "{row:?}");
            assert!(row.instructions > 0, "{row:?}");
            assert!(row.mips() > 0.0, "{row:?}");
        }
        // The registry saw the simulators run.
        let snap = reg.snapshot();
        assert!(
            snap.metrics.keys().any(|k| k.name == "lisa_sim_cycles_total"),
            "sim stats published"
        );
        assert!(
            snap.metrics.keys().any(|k| k.name == "lisa_bench_cell_duration_us"),
            "cell latency recorded"
        );
    }
}

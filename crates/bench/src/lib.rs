//! Experiment harness reproducing the LISA paper's evaluation.
//!
//! Each experiment from `DESIGN.md` has a runner here; the `table_*`
//! binaries print the paper-versus-measured tables recorded in
//! `EXPERIMENTS.md`, and the Criterion benches in `benches/` measure the
//! timing-sensitive ones.
//!
//! * **E1** — model complexity statistics ([`model_stats_rows`]);
//! * **E2** — tool-generation time ([`toolgen_once`]);
//! * **E3** — compiled vs interpretive simulation speed
//!   ([`measure_sim_speed`]);
//! * **E5** — compile-time `SWITCH`/`CASE` specialisation versus run-time
//!   operand checks ([`specialization`]);
//! * **E15** — threaded micro-op (ops) backend vs both older backends
//!   ([`measure_tri_speed`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod specialization;
pub mod trajectory;

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use lisa_core::model::ModelStats;
use lisa_core::Model;
use lisa_models::kernels::Kernel;
use lisa_models::{accu16, kernels, scalar2, tinyrisc, vliw62, Workbench};
use lisa_sim::SimMode;

/// One row of the E1 model-statistics table.
#[derive(Debug, Clone)]
pub struct StatsRow {
    /// Model name.
    pub model: &'static str,
    /// The computed statistics.
    pub stats: ModelStats,
}

/// Builds every bundled model and returns its statistics (experiment E1).
///
/// # Panics
///
/// Panics if a bundled model fails to build (a bug, covered by tests).
#[must_use]
pub fn model_stats_rows() -> Vec<StatsRow> {
    let mut rows = Vec::new();
    for (name, source) in [
        ("vliw62", vliw62::SOURCE),
        ("accu16", accu16::SOURCE),
        ("scalar2", scalar2::SOURCE),
        ("tinyrisc", tinyrisc::SOURCE),
    ] {
        let model = Model::from_source(source).expect("bundled model builds");
        rows.push(StatsRow { model: name, stats: ModelStats::of(&model) });
    }
    rows
}

/// Timing of the tool-generation pipeline for one model (experiment E2 —
/// the paper reports 30 s for the C6201 model on a Sparc Ultra 10).
#[derive(Debug, Clone, Copy)]
pub struct ToolgenTiming {
    /// Parse + model-database construction.
    pub parse_and_analyze: Duration,
    /// Decoder generation.
    pub decoder: Duration,
    /// Compiled-simulator generation (behavior lowering).
    pub lower: Duration,
    /// Program pre-decoding (per instruction word of a loaded kernel).
    pub predecode: Duration,
}

impl ToolgenTiming {
    /// Total generation time.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.parse_and_analyze + self.decoder + self.lower + self.predecode
    }
}

/// Runs the full tool-generation pipeline once for a LISA source.
///
/// # Panics
///
/// Panics if the source fails to build (bundled sources are covered by
/// tests).
#[must_use]
pub fn toolgen_once(source: &str) -> ToolgenTiming {
    let t0 = Instant::now();
    let model = Model::from_source(source).expect("model builds");
    let parse_and_analyze = t0.elapsed();

    let t1 = Instant::now();
    let decoder = lisa_isa::Decoder::new(&model);
    let decoder_time = t1.elapsed();
    drop(decoder);

    let t2 = Instant::now();
    let sim = lisa_sim::Simulator::new(&model, SimMode::Compiled).expect("lowering succeeds");
    let lower = t2.elapsed();

    let t3 = Instant::now();
    let mut sim = sim;
    sim.predecode_program_memory();
    let predecode = t3.elapsed();

    ToolgenTiming { parse_and_analyze, decoder: decoder_time, lower, predecode }
}

/// The result of one E3 speed measurement.
#[derive(Debug, Clone)]
pub struct SpeedRow {
    /// Kernel name.
    pub kernel: String,
    /// Cycles the kernel took (identical for both modes — checked).
    pub cycles: u64,
    /// Interpretive wall time.
    pub interpretive: Duration,
    /// Compiled wall time.
    pub compiled: Duration,
}

impl SpeedRow {
    /// Interpretive simulation speed in cycles/second.
    #[must_use]
    pub fn interp_cps(&self) -> f64 {
        self.cycles as f64 / self.interpretive.as_secs_f64()
    }

    /// Compiled simulation speed in cycles/second.
    #[must_use]
    pub fn compiled_cps(&self) -> f64 {
        self.cycles as f64 / self.compiled.as_secs_f64()
    }

    /// Compiled-over-interpretive speedup factor.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.interpretive.as_secs_f64() / self.compiled.as_secs_f64()
    }
}

/// Measures interpretive vs compiled simulation speed on one kernel
/// (experiment E3). The kernel is run `repeats` times per mode and the
/// best time is kept (Criterion does the rigorous version; this powers
/// the table binary).
///
/// # Panics
///
/// Panics if the kernel fails to run or the two modes disagree on the
/// cycle count (cycle accuracy must not depend on the backend).
#[must_use]
pub fn measure_sim_speed(wb: &Workbench, kernel: &Kernel, repeats: u32) -> SpeedRow {
    let mut best = [Duration::MAX; 2];
    let mut cycles = [0u64; 2];
    for (slot, mode) in [SimMode::Interpretive, SimMode::Compiled].into_iter().enumerate() {
        for _ in 0..repeats {
            let mut sim = kernels::load_kernel(wb, kernel, mode).expect("kernel loads");
            let t = Instant::now();
            let c = wb.run_to_halt(&mut sim, kernel.max_steps).expect("kernel halts");
            let elapsed = t.elapsed();
            kernels::verify_kernel(wb, kernel, &sim);
            cycles[slot] = c;
            best[slot] = best[slot].min(elapsed);
        }
    }
    assert_eq!(cycles[0], cycles[1], "modes disagree on cycles for {}", kernel.name);
    SpeedRow {
        kernel: kernel.name.clone(),
        cycles: cycles[0],
        interpretive: best[0],
        compiled: best[1],
    }
}

/// The result of one E15 three-backend speed measurement.
#[derive(Debug, Clone)]
pub struct TriSpeedRow {
    /// Kernel name.
    pub kernel: String,
    /// Cycles the kernel took (identical across all modes — checked).
    pub cycles: u64,
    /// Interpretive wall time.
    pub interpretive: Duration,
    /// Compiled wall time.
    pub compiled: Duration,
    /// Threaded micro-op wall time.
    pub ops: Duration,
}

impl TriSpeedRow {
    /// Interpretive simulation speed in cycles/second.
    #[must_use]
    pub fn interp_cps(&self) -> f64 {
        self.cycles as f64 / self.interpretive.as_secs_f64()
    }

    /// Compiled simulation speed in cycles/second.
    #[must_use]
    pub fn compiled_cps(&self) -> f64 {
        self.cycles as f64 / self.compiled.as_secs_f64()
    }

    /// Ops simulation speed in cycles/second.
    #[must_use]
    pub fn ops_cps(&self) -> f64 {
        self.cycles as f64 / self.ops.as_secs_f64()
    }

    /// Ops-over-interpretive speedup factor.
    #[must_use]
    pub fn ops_speedup(&self) -> f64 {
        self.interpretive.as_secs_f64() / self.ops.as_secs_f64()
    }

    /// Ops-over-compiled speedup factor.
    #[must_use]
    pub fn ops_over_compiled(&self) -> f64 {
        self.compiled.as_secs_f64() / self.ops.as_secs_f64()
    }
}

/// Measures all three execution backends on one kernel (experiment E15).
/// Same protocol as [`measure_sim_speed`]: `repeats` runs per mode, best
/// time kept, results verified and cycle counts cross-checked.
///
/// # Panics
///
/// Panics if the kernel fails to run or any two modes disagree on the
/// cycle count (cycle accuracy must not depend on the backend).
#[must_use]
pub fn measure_tri_speed(wb: &Workbench, kernel: &Kernel, repeats: u32) -> TriSpeedRow {
    let mut best = [Duration::MAX; 3];
    let mut cycles = [0u64; 3];
    let modes = [SimMode::Interpretive, SimMode::Compiled, SimMode::Ops];
    for (slot, mode) in modes.into_iter().enumerate() {
        for _ in 0..repeats {
            let mut sim = kernels::load_kernel(wb, kernel, mode).expect("kernel loads");
            let t = Instant::now();
            let c = wb.run_to_halt(&mut sim, kernel.max_steps).expect("kernel halts");
            let elapsed = t.elapsed();
            kernels::verify_kernel(wb, kernel, &sim);
            cycles[slot] = c;
            best[slot] = best[slot].min(elapsed);
        }
    }
    assert_eq!(cycles[0], cycles[1], "modes disagree on cycles for {}", kernel.name);
    assert_eq!(cycles[0], cycles[2], "ops mode disagrees on cycles for {}", kernel.name);
    TriSpeedRow {
        kernel: kernel.name.clone(),
        cycles: cycles[0],
        interpretive: best[0],
        compiled: best[1],
        ops: best[2],
    }
}

/// The repository's `docs/` directory, where every experiment table and
/// benchmark artifact belongs (resolved from this crate's manifest, so
/// it does not depend on the invocation directory).
#[must_use]
pub fn docs_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs")
}

/// Prints an experiment report to stdout **and** writes it to
/// `docs/<file_name>`, so `table_*` binaries can never scatter their
/// output into whatever directory they were launched from.
///
/// # Panics
///
/// Panics when `docs/` is not writable — the binaries exist to record
/// results, so failing silently would defeat them.
pub fn write_report(file_name: &str, text: &str) {
    print!("{text}");
    let path = docs_dir().join(file_name);
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("(written to {})", path.display());
}

/// Formats a duration in engineering units for the tables.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.0} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_rows_cover_all_models() {
        let rows = model_stats_rows();
        assert_eq!(rows.len(), 4);
        let vliw = &rows[0];
        assert_eq!(vliw.model, "vliw62");
        assert!(vliw.stats.instructions >= 50);
        assert!(vliw.stats.lisa_lines > 500);
    }

    #[test]
    fn toolgen_completes_quickly() {
        let timing = toolgen_once(vliw62::SOURCE);
        // The paper took 30 s on 1998 hardware; anything under 5 s here
        // would still validate the claim, and we expect milliseconds.
        assert!(timing.total() < Duration::from_secs(5), "{timing:?}");
    }

    #[test]
    fn speed_measurement_reports_consistent_cycles() {
        let wb = vliw62::workbench().unwrap();
        let kernel = kernels::vliw_dot_product(8);
        let row = measure_sim_speed(&wb, &kernel, 1);
        assert!(row.cycles > 0);
        assert!(row.interpretive > Duration::ZERO);
        assert!(row.compiled > Duration::ZERO);
    }
}

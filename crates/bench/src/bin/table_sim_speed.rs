//! Experiment E3: compiled vs interpretive simulation speed on the DSP
//! kernel suite. The paper (§3.3, ref. \[13\]) reports "speed-ups of more
//! than two orders of magnitude over interpretive processor simulators"
//! for the compiled technique.

use std::fmt::Write as _;

use lisa_bench::{measure_sim_speed, write_report};
use lisa_models::{accu16, kernels, vliw62};

fn main() {
    let mut out = String::new();
    writeln!(out, "E3 — compiled vs interpretive simulation speed").unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<18} {:>8} {:>14} {:>14} {:>9}",
        "kernel", "cycles", "interp c/s", "compiled c/s", "speedup"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(68)).unwrap();

    let vliw = vliw62::workbench().expect("vliw62 builds");
    let mut speedups = Vec::new();
    for kernel in kernels::vliw_suite() {
        let row = measure_sim_speed(&vliw, &kernel, 3);
        writeln!(
            out,
            "{:<18} {:>8} {:>14.0} {:>14.0} {:>8.1}x",
            row.kernel,
            row.cycles,
            row.interp_cps(),
            row.compiled_cps(),
            row.speedup()
        )
        .unwrap();
        speedups.push(row.speedup());
    }

    let accu = accu16::workbench().expect("accu16 builds");
    for kernel in kernels::accu_suite() {
        let row = measure_sim_speed(&accu, &kernel, 3);
        writeln!(
            out,
            "{:<18} {:>8} {:>14.0} {:>14.0} {:>8.1}x",
            row.kernel,
            row.cycles,
            row.interp_cps(),
            row.compiled_cps(),
            row.speedup()
        )
        .unwrap();
        speedups.push(row.speedup());
    }
    writeln!(out, "{}", "-".repeat(68)).unwrap();
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    writeln!(out, "geometric-mean speedup: {geomean:.1}x").unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "paper claim: compiled simulation > 100x over interpretive (DAC'99 §3.3 / [13]);"
    )
    .unwrap();
    writeln!(out, "our interpretive baseline already shares the pipeline engine, so the gap here")
        .unwrap();
    writeln!(out, "isolates decode + name-resolution cost alone (see EXPERIMENTS.md).").unwrap();
    write_report("e3_sim_speed.txt", &out);
}

//! Experiment E5: compile-time SWITCH/CASE specialisation versus run-time
//! operand side checks (paper §3.4, Example 6).

use std::fmt::Write as _;

use lisa_bench::specialization::{run_workload, workbench};
use lisa_bench::write_report;
use lisa_sim::SimMode;

fn main() {
    let mut out = String::new();
    writeln!(out, "E5 — SWITCH/CASE specialisation vs run-time checks (paper Example 6)").unwrap();
    writeln!(out).unwrap();
    let iterations = 20_000;
    let spec = workbench(true).expect("specialized machine builds");
    let rt = workbench(false).expect("runtime machine builds");

    writeln!(out, "{:<24} {:>10} {:>14} {:>14}", "machine", "cycles", "wall (best)", "cycles/s")
        .unwrap();
    writeln!(out, "{}", "-".repeat(66)).unwrap();
    let mut times = Vec::new();
    for (name, wb) in [("switch-specialised", &spec), ("run-time checks", &rt)] {
        let mut best = std::time::Duration::MAX;
        let mut cycles = 0;
        for _ in 0..3 {
            let (c, t) = run_workload(wb, iterations, SimMode::Compiled).expect("runs");
            cycles = c;
            best = best.min(t);
        }
        writeln!(
            out,
            "{:<24} {:>10} {:>14} {:>14.0}",
            name,
            cycles,
            lisa_bench::fmt_duration(best),
            cycles as f64 / best.as_secs_f64()
        )
        .unwrap();
        times.push(best);
    }
    writeln!(out, "{}", "-".repeat(66)).unwrap();
    writeln!(
        out,
        "run-time checks cost {:.1}% extra wall time for the same cycle count",
        (times[1].as_secs_f64() / times[0].as_secs_f64() - 1.0) * 100.0
    )
    .unwrap();
    write_report("e5_specialization.txt", &out);
}

//! Experiment E14: cost of the span layer and where request time goes.
//!
//! Two questions, one report:
//!
//! 1. **Overhead** — the simulator's cycle loop carries an optional
//!    [`lisa_spans::SpanScope`]. With no scope attached the loop is the
//!    E12-era fast path; with a scope on a *disabled* recorder every
//!    chunk boundary costs one atomic-bool branch; enabled, it also pays
//!    a clock read and a ring write per chunk. The gate is on the
//!    disabled path: attaching tracing machinery must not tax users who
//!    leave it off.
//! 2. **Attribution** — boots the HTTP service in-process (spans on, as
//!    in production) at 1/2/4 workers, drives it with keep-alive
//!    clients, then folds the recorded spans into a per-phase table.
//!    This pins down E13's flat 1→4 worker scaling by *measuring* where
//!    the wall-clock time of a request goes instead of guessing.
//!
//! Acceptance gate: spans-disabled geometric-mean overhead < 2%
//! (process exits 1 past the gate, so CI can hold the line).
//!
//! `--quick` shrinks repeats and request counts for CI.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lisa_bench::write_report;
use lisa_models::{accu16, kernels, vliw62, Workbench};
use lisa_serve::{AppState, ServeConfig, Server, ServerHandle};
use lisa_sim::SimMode;
use lisa_spans::{SpanKind, SpanRecorder, SpanScope};

/// The three instrumentation states the cycle loop can be in.
#[derive(Clone, Copy, PartialEq)]
enum Config {
    /// No scope attached: the untraced fast path.
    Baseline,
    /// Scope attached, recorder disabled: one branch per chunk.
    Disabled,
    /// Scope attached, recorder enabled: branch + clock + ring write.
    Enabled,
}

/// Best-of-`repeats` wall time for one kernel under one config.
fn measure(
    wb: &Workbench,
    kernel: &kernels::Kernel,
    config: Config,
    recorder: &Arc<SpanRecorder>,
    repeats: u32,
) -> (u64, Duration) {
    recorder.set_enabled(config == Config::Enabled);
    let mut best = Duration::MAX;
    let mut cycles = 0;
    for _ in 0..repeats {
        recorder.clear();
        let mut sim = kernels::load_kernel(wb, kernel, SimMode::Compiled).expect("kernel loads");
        if config != Config::Baseline {
            let trace = recorder.new_trace();
            sim.set_spans(Some(SpanScope::new(Arc::clone(recorder), trace)));
        }
        let t = Instant::now();
        cycles = wb.run_to_halt(&mut sim, kernel.max_steps).expect("kernel halts");
        best = best.min(t.elapsed());
        kernels::verify_kernel(wb, kernel, &sim);
    }
    (cycles, best)
}

fn boot(workers: usize) -> (SocketAddr, Arc<AppState>, ServerHandle, std::thread::JoinHandle<()>) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue: 256,
        timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let state = Arc::new(AppState::new());
    let server = Server::bind(config, Arc::clone(&state)).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, state, handle, join)
}

/// Sends `count` sequential keep-alive `/v1/simulate` requests on one
/// connection, asserting 200s.
fn client(addr: SocketAddr, request: &[u8], count: usize) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).ok();
    conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    for _ in 0..count {
        conn.write_all(request).expect("write request");
        loop {
            if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4) {
                let head = String::from_utf8_lossy(&buf[..head_end]);
                assert!(head.starts_with("HTTP/1.1 200"), "unexpected response: {head}");
                let need: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .expect("Content-Length")
                    .trim()
                    .parse()
                    .expect("length value");
                if buf.len() >= head_end + need {
                    buf.drain(..head_end + need);
                    break;
                }
            }
            let n = conn.read(&mut chunk).expect("read response");
            assert!(n > 0, "server closed mid-benchmark");
            buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Per-phase totals folded from one serve run's span snapshot.
struct Attribution {
    /// Summed duration per span kind, in nanoseconds.
    totals: BTreeMap<&'static str, (u64, u64)>,
    request_ns: u64,
    requests: u64,
    dropped: u64,
}

fn attribute(spans: &[lisa_spans::SpanRecord], dropped: u64) -> Attribution {
    let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let mut request_ns = 0;
    let mut requests = 0;
    for span in spans {
        let entry = totals.entry(span.kind.as_str()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += span.dur_ns;
        if span.kind == SpanKind::Request {
            request_ns += span.dur_ns;
            requests += 1;
        }
    }
    Attribution { totals, request_ns, requests, dropped }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let repeats: u32 = if quick { 2 } else { 5 };
    // Sized so one worker thread's span volume (~8 spans/request, all
    // landing in that thread's shard) stays inside the server's 16k
    // flight recorder without wrapping.
    let clients: usize = 4;
    let per_client: usize = if quick { 20 } else { 40 };

    let mut out = String::new();
    writeln!(out, "E14 — span-layer overhead and request-time attribution").unwrap();
    writeln!(out).unwrap();

    // Part 1: cycle-loop overhead across the three instrumentation
    // states (compiled mode, best of {repeats}).
    writeln!(out, "cycle-loop overhead (compiled mode, best of {repeats})").unwrap();
    writeln!(
        out,
        "{:<18} {:>8} {:>13} {:>13} {:>13} {:>9} {:>9}",
        "kernel", "cycles", "plain c/s", "off c/s", "on c/s", "off ovh", "on ovh"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(90)).unwrap();

    let recorder = Arc::new(SpanRecorder::new(1 << 16));
    let suites: [(Workbench, Vec<kernels::Kernel>); 2] = [
        (vliw62::workbench().expect("vliw62 builds"), kernels::vliw_suite()),
        (accu16::workbench().expect("accu16 builds"), kernels::accu_suite()),
    ];
    let (mut plain_total, mut off_total, mut on_total) = (0.0f64, 0.0f64, 0.0f64);
    let mut n = 0.0f64;
    for (wb, suite) in &suites {
        for kernel in suite {
            let (cycles, plain) = measure(wb, kernel, Config::Baseline, &recorder, repeats);
            let (_, off) = measure(wb, kernel, Config::Disabled, &recorder, repeats);
            let (_, on) = measure(wb, kernel, Config::Enabled, &recorder, repeats);
            let plain_cps = cycles as f64 / plain.as_secs_f64();
            let off_cps = cycles as f64 / off.as_secs_f64();
            let on_cps = cycles as f64 / on.as_secs_f64();
            writeln!(
                out,
                "{:<18} {:>8} {:>13.0} {:>13.0} {:>13.0} {:>8.1}% {:>8.1}%",
                kernel.name,
                cycles,
                plain_cps,
                off_cps,
                on_cps,
                (plain_cps / off_cps - 1.0) * 100.0,
                (plain_cps / on_cps - 1.0) * 100.0,
            )
            .unwrap();
            plain_total += plain_cps.ln();
            off_total += off_cps.ln();
            on_total += on_cps.ln();
            n += 1.0;
        }
    }
    let off_overhead = ((plain_total / n).exp() / (off_total / n).exp() - 1.0) * 100.0;
    let on_overhead = ((plain_total / n).exp() / (on_total / n).exp() - 1.0) * 100.0;
    writeln!(out, "{}", "-".repeat(90)).unwrap();
    writeln!(
        out,
        "geometric means: spans-off overhead {off_overhead:.1}%, spans-on overhead {on_overhead:.1}%"
    )
    .unwrap();
    writeln!(out).unwrap();

    // Part 2: where a /v1/simulate request's wall-clock time goes, per
    // worker-pool size, measured from the server's own span recorder.
    writeln!(
        out,
        "request-time attribution ({clients} keep-alive clients x {per_client} /v1/simulate each)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:>9} {:>12} {:>11} {:>8} {:>10} {:>11} {:>8} {:>8}",
        "workers",
        "requests",
        "req avg us",
        "queue_wait",
        "parse",
        "assemble",
        "run",
        "serialize",
        "write"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(92)).unwrap();

    let body = br#"{"model": "tinyrisc", "program": "LDI R1, 20\nLDI R2, 22\nADD R3, R1, R2\nHLT\n", "dump": [["R", 4]]}"#;
    let request = format!(
        "POST /v1/simulate HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        String::from_utf8_lossy(body)
    )
    .into_bytes();

    let mut queue_wait_shares: Vec<(usize, f64)> = Vec::new();
    for workers in [1usize, 2, 4] {
        let (addr, state, handle, join) = boot(workers);
        let threads: Vec<_> = (0..clients)
            .map(|_| {
                let request = request.clone();
                std::thread::spawn(move || client(addr, &request, per_client))
            })
            .collect();
        for thread in threads {
            thread.join().expect("client thread");
        }
        handle.shutdown();
        join.join().expect("server thread");

        let spans = state.spans().collect();
        let att = attribute(&spans, state.spans().dropped());
        let share = |kind: SpanKind| -> f64 {
            let (_, ns) = att.totals.get(kind.as_str()).copied().unwrap_or((0, 0));
            ns as f64 / att.request_ns.max(1) as f64 * 100.0
        };
        queue_wait_shares.push((workers, share(SpanKind::QueueWait)));
        writeln!(
            out,
            "{:<8} {:>9} {:>12.0} {:>10.1}% {:>7.1}% {:>9.1}% {:>10.1}% {:>7.1}% {:>7.1}%",
            workers,
            att.requests,
            att.request_ns as f64 / att.requests.max(1) as f64 / 1000.0,
            share(SpanKind::QueueWait),
            share(SpanKind::Parse),
            share(SpanKind::Assemble),
            share(SpanKind::Run),
            share(SpanKind::Serialize),
            share(SpanKind::Write),
        )
        .unwrap();
        if att.dropped > 0 {
            writeln!(
                out,
                "  (flight recorder wrapped: {} span(s) overwritten; shares are over the retained window)",
                att.dropped
            )
            .unwrap();
        }
    }

    writeln!(out).unwrap();
    writeln!(out, "notes: queue_wait sums each connection's one-off wait for a worker,").unwrap();
    writeln!(out, "relative to summed request time — above 100% means connections in").unwrap();
    writeln!(out, "aggregate waited longer than they were served, the contention").unwrap();
    writeln!(out, "signature of an undersized pool. That wait collapses to ~0% by 4").unwrap();
    writeln!(out, "workers, which pins down E13's flat 1->4 scaling: the bottleneck is").unwrap();
    writeln!(out, "not queueing but the serial per-connection pipeline — each keep-alive").unwrap();
    writeln!(out, "connection is owned by one worker, and its request time is dominated").unwrap();
    writeln!(out, "by the serve layer (parse/route/serialize/write plus the assemble+run").unwrap();
    writeln!(out, "work), which added workers cannot shorten for an already-pinned").unwrap();
    writeln!(out, "connection.").unwrap();
    for (workers, share) in &queue_wait_shares {
        writeln!(out, "  queue_wait share at {workers} worker(s): {share:.2}%").unwrap();
    }
    writeln!(out).unwrap();
    writeln!(out, "acceptance gate: spans-off geomean overhead < 2% (measured {off_overhead:.2}%)")
        .unwrap();

    write_report("e14_span_overhead.txt", &out);

    if off_overhead >= 2.0 {
        eprintln!("E14 GATE FAILED: spans-disabled overhead {off_overhead:.2}% >= 2%");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

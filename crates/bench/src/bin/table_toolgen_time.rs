//! Experiment E2: tool-generation time. The paper reports "the
//! translation of the TMS320C6201 processor model into the simulator
//! takes only 30 seconds on a Sparc Ultra 10" (§4.1).

use std::fmt::Write as _;

use lisa_bench::{fmt_duration, toolgen_once, write_report};
use lisa_models::{accu16, tinyrisc, vliw62};

fn main() {
    let mut out = String::new();
    writeln!(out, "E2 — simulator/tool generation time (paper §4.1: 30 s on a Sparc Ultra 10)")
        .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<10} {:>16} {:>12} {:>12} {:>12} {:>12}",
        "model", "parse+analyze", "decoder", "lowering", "predecode", "total"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(80)).unwrap();
    for (name, source) in
        [("vliw62", vliw62::SOURCE), ("accu16", accu16::SOURCE), ("tinyrisc", tinyrisc::SOURCE)]
    {
        // Warm up once, then keep the best of five runs.
        let _ = toolgen_once(source);
        let best = (0..5)
            .map(|_| toolgen_once(source))
            .min_by_key(lisa_bench::ToolgenTiming::total)
            .expect("five runs");
        writeln!(
            out,
            "{:<10} {:>16} {:>12} {:>12} {:>12} {:>12}",
            name,
            fmt_duration(best.parse_and_analyze),
            fmt_duration(best.decoder),
            fmt_duration(best.lower),
            fmt_duration(best.predecode),
            fmt_duration(best.total())
        )
        .unwrap();
    }
    write_report("e2_toolgen.txt", &out);
}

//! Experiment E1: model complexity statistics, side by side with the
//! paper's TMS320C6201 figures (§4).

use std::fmt::Write as _;

use lisa_bench::{model_stats_rows, write_report};

fn main() {
    let mut out = String::new();
    writeln!(out, "E1 — model complexity (paper §4)").unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>11} {:>13} {:>8} {:>11} {:>9} {:>8}",
        "model",
        "resources",
        "operations",
        "instructions",
        "aliases",
        "LISA lines",
        "lines/op",
        "variants"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(86)).unwrap();
    for row in model_stats_rows() {
        let s = &row.stats;
        writeln!(
            out,
            "{:<10} {:>10} {:>11} {:>13} {:>8} {:>11} {:>9.1} {:>8}",
            row.model,
            s.resources,
            s.operations,
            s.instructions,
            s.aliases,
            s.lisa_lines,
            s.lines_per_operation(),
            s.variants
        )
        .unwrap();
    }
    writeln!(out, "{}", "-".repeat(86)).unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>11} {:>13} {:>8} {:>11} {:>9.1} {:>8}",
        "paper", 54, 256, 156, 8, 5362, 21.0, "-"
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(out, "paper row: the TMS320C6201 model of Pees et al. (DAC 1999), §4.").unwrap();
    write_report("e1_model_stats.txt", &out);
}

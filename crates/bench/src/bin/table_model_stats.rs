//! Experiment E1: model complexity statistics, side by side with the
//! paper's TMS320C6201 figures (§4).

use lisa_bench::model_stats_rows;

fn main() {
    println!("E1 — model complexity (paper §4)");
    println!();
    println!(
        "{:<10} {:>10} {:>11} {:>13} {:>8} {:>11} {:>9} {:>8}",
        "model",
        "resources",
        "operations",
        "instructions",
        "aliases",
        "LISA lines",
        "lines/op",
        "variants"
    );
    println!("{}", "-".repeat(86));
    for row in model_stats_rows() {
        let s = &row.stats;
        println!(
            "{:<10} {:>10} {:>11} {:>13} {:>8} {:>11} {:>9.1} {:>8}",
            row.model,
            s.resources,
            s.operations,
            s.instructions,
            s.aliases,
            s.lisa_lines,
            s.lines_per_operation(),
            s.variants
        );
    }
    println!("{}", "-".repeat(86));
    println!(
        "{:<10} {:>10} {:>11} {:>13} {:>8} {:>11} {:>9.1} {:>8}",
        "paper", 54, 256, 156, 8, 5362, 21.0, "-"
    );
    println!();
    println!("paper row: the TMS320C6201 model of Pees et al. (DAC 1999), §4.");
}

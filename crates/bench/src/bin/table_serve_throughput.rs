//! Experiment E13: HTTP service throughput and latency over loopback.
//!
//! Boots the `lisa-serve` server in-process on an ephemeral port, then
//! drives it with keep-alive client threads issuing `/healthz` probes
//! and real `/v1/simulate` jobs. Reports requests/s plus p50/p99
//! request latency per worker-pool size, so the worker-count lever is
//! visible in one table.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lisa_bench::write_report;
use lisa_serve::{AppState, ServeConfig, Server};

const CLIENTS: usize = 4;
const HEALTH_REQUESTS: usize = 400;
const SIM_REQUESTS: usize = 60;

/// One benchmark cell: per-request latencies measured by every client.
struct Cell {
    elapsed: Duration,
    latencies_us: Vec<u64>,
}

fn boot(workers: usize) -> (SocketAddr, lisa_serve::ServerHandle, std::thread::JoinHandle<()>) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue: 256,
        timeout: Duration::from_secs(30),
        once: false,
        ..ServeConfig::default()
    };
    let server = Server::bind(config, Arc::new(AppState::new())).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle, join)
}

/// Sends `count` sequential keep-alive requests on one connection,
/// timing each round trip.
fn client(addr: SocketAddr, request: &[u8], count: usize, body_probe: &[u8]) -> Vec<u64> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).ok();
    conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut latencies = Vec::with_capacity(count);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    for _ in 0..count {
        let t = Instant::now();
        conn.write_all(request).expect("write request");
        // Read one full response: head + Content-Length body bytes.
        loop {
            if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4) {
                let head = String::from_utf8_lossy(&buf[..head_end]);
                assert!(head.starts_with("HTTP/1.1 200"), "unexpected response: {head}");
                let need: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .expect("Content-Length")
                    .trim()
                    .parse()
                    .expect("length value");
                if buf.len() >= head_end + need {
                    assert!(
                        body_probe.is_empty()
                            || buf[head_end..head_end + need]
                                .windows(body_probe.len())
                                .any(|w| w == body_probe),
                        "response body missing {:?}",
                        String::from_utf8_lossy(body_probe)
                    );
                    buf.drain(..head_end + need);
                    break;
                }
            }
            let n = conn.read(&mut chunk).expect("read response");
            assert!(n > 0, "server closed mid-benchmark");
            buf.extend_from_slice(&chunk[..n]);
        }
        latencies.push(t.elapsed().as_micros() as u64);
    }
    latencies
}

/// Runs one cell: `CLIENTS` threads each sending `per_client` requests.
fn run_cell(workers: usize, request: &[u8], per_client: usize, body_probe: &'static [u8]) -> Cell {
    let (addr, handle, join) = boot(workers);
    let t = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let request = request.to_vec();
            std::thread::spawn(move || client(addr, &request, per_client, body_probe))
        })
        .collect();
    let mut latencies_us = Vec::new();
    for thread in threads {
        latencies_us.extend(thread.join().expect("client thread"));
    }
    let elapsed = t.elapsed();
    handle.shutdown();
    join.join().expect("server thread");
    latencies_us.sort_unstable();
    Cell { elapsed, latencies_us }
}

/// Nearest-rank percentile over sorted data.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let health = b"GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n".to_vec();
    let sim_body = br#"{"model": "tinyrisc", "program": "LDI R1, 20\nLDI R2, 22\nADD R3, R1, R2\nHLT\n", "dump": [["R", 4]]}"#;
    let sim = format!(
        "POST /v1/simulate HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{}",
        sim_body.len(),
        String::from_utf8_lossy(sim_body)
    )
    .into_bytes();

    let mut out = String::new();
    writeln!(out, "E13 — HTTP service throughput and latency (loopback)").unwrap();
    writeln!(
        out,
        "({CLIENTS} keep-alive clients; {HEALTH_REQUESTS} /healthz + {SIM_REQUESTS} /v1/simulate requests each)"
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<14} {:<8} {:>9} {:>12} {:>10} {:>10}",
        "endpoint", "workers", "requests", "requests/s", "p50 us", "p99 us"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(68)).unwrap();

    for (endpoint, request, per_client, probe) in [
        ("/healthz", &health, HEALTH_REQUESTS, &b""[..]),
        ("/v1/simulate", &sim, SIM_REQUESTS, &b"\"halted\": true"[..]),
    ] {
        for workers in [1usize, 2, 4] {
            // Best of three to damp scheduler noise.
            let cell = (0..3)
                .map(|_| run_cell(workers, request, per_client, probe))
                .min_by(|a, b| a.elapsed.cmp(&b.elapsed))
                .expect("three runs");
            let total = cell.latencies_us.len();
            let rps = total as f64 / cell.elapsed.as_secs_f64();
            writeln!(
                out,
                "{:<14} {:<8} {:>9} {:>12.0} {:>10} {:>10}",
                endpoint,
                workers,
                total,
                rps,
                percentile(&cell.latencies_us, 50.0),
                percentile(&cell.latencies_us, 99.0),
            )
            .unwrap();
        }
    }

    writeln!(out).unwrap();
    writeln!(
        out,
        "note: single-machine loopback numbers; /v1/simulate includes a full\n\
         assemble + compiled-mode run per request. p50/p99 are nearest-rank\n\
         over all client-observed round-trip times."
    )
    .unwrap();

    write_report("e13_serve_throughput.txt", &out);
}

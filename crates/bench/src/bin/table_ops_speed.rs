//! Experiment E15: threaded micro-op (ops) backend vs the interpretive
//! and compiled backends on the DSP kernel suite. The ops backend lowers
//! every decoded instruction instance to a flat micro-op array at
//! translate time (labels folded, SWITCH arms resolved, register slots
//! pre-indexed), so the cycle loop is a tight dispatch over contiguous
//! ops — this table measures what that buys over both older backends.
//!
//! The report is **gated** at two levels. [`FLOOR`] is the hard
//! regression gate: the geometric-mean ops-over-interpretive speedup
//! must stay above it or the process exits non-zero, so CI catches a
//! regressed translator. [`PAPER_TARGET`] is the DAC'99 §3.3
//! paper-parity goal (>2 orders of magnitude there, scaled here to 20x)
//! and is reported honestly — the builtin models are small enough that
//! the shared engine floor (scheduling, pipeline bookkeeping, resource
//! storage) dominates the cycle budget in every backend, so the
//! measured headroom over an already-fast Rust tree-walker is ~4x, not
//! 20x. See EXPERIMENTS.md E15 for the full analysis.

use std::fmt::Write as _;

use lisa_bench::{measure_tri_speed, write_report, TriSpeedRow};
use lisa_models::{accu16, kernels, scalar2, tinyrisc, vliw62};

/// Hard gate: minimum geometric-mean ops-over-interpretive speedup.
/// Measured ~4.0x on the 12-kernel suite; 3.0 leaves noise margin while
/// still catching a translator that stops paying for itself.
const FLOOR: f64 = 3.0;

/// Aspirational paper-parity target (DAC'99 §3.3 claims >100x against a
/// naive interpretive simulator). Reported, not gated.
const PAPER_TARGET: f64 = 20.0;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|s| s.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn main() {
    let mut out = String::new();
    writeln!(out, "E15 — threaded micro-op (ops) backend vs interpretive and compiled").unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<18} {:>8} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "kernel", "cycles", "interp c/s", "compiled c/s", "ops c/s", "ops/intp", "ops/comp"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(86)).unwrap();

    let mut rows: Vec<TriSpeedRow> = Vec::new();
    let vliw = vliw62::workbench().expect("vliw62 builds");
    for kernel in kernels::vliw_suite() {
        rows.push(measure_tri_speed(&vliw, &kernel, 3));
    }
    let accu = accu16::workbench().expect("accu16 builds");
    for kernel in kernels::accu_suite() {
        rows.push(measure_tri_speed(&accu, &kernel, 3));
    }
    let tiny = tinyrisc::workbench().expect("tinyrisc builds");
    for kernel in kernels::tiny_suite() {
        rows.push(measure_tri_speed(&tiny, &kernel, 3));
    }
    let scalar = scalar2::workbench().expect("scalar2 builds");
    for kernel in kernels::scalar_suite() {
        rows.push(measure_tri_speed(&scalar, &kernel, 3));
    }

    for row in &rows {
        writeln!(
            out,
            "{:<18} {:>8} {:>12.0} {:>12.0} {:>12.0} {:>8.1}x {:>8.1}x",
            row.kernel,
            row.cycles,
            row.interp_cps(),
            row.compiled_cps(),
            row.ops_cps(),
            row.ops_speedup(),
            row.ops_over_compiled()
        )
        .unwrap();
    }
    writeln!(out, "{}", "-".repeat(86)).unwrap();

    let over_interp = geomean(&rows.iter().map(TriSpeedRow::ops_speedup).collect::<Vec<_>>());
    let over_compiled =
        geomean(&rows.iter().map(TriSpeedRow::ops_over_compiled).collect::<Vec<_>>());
    writeln!(out, "geometric-mean ops speedup over interpretive: {over_interp:.1}x").unwrap();
    writeln!(out, "geometric-mean ops speedup over compiled:     {over_compiled:.1}x").unwrap();
    writeln!(out).unwrap();
    let floor_verdict = if over_interp >= FLOOR { "PASS" } else { "FAIL" };
    writeln!(out, "regression gate: geomean >= {FLOOR:.1}x — {floor_verdict}").unwrap();
    let parity = if over_interp >= PAPER_TARGET { "met" } else { "not met" };
    writeln!(out, "paper-parity target ({PAPER_TARGET:.0}x): {parity} at {over_interp:.1}x")
        .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "paper claim: compiled simulation > 100x over interpretive (DAC'99 §3.3 / [13]),"
    )
    .unwrap();
    writeln!(out, "measured against a fully naive interpretive simulator. Here the baseline")
        .unwrap();
    writeln!(out, "is itself a predecoded Rust tree-walker sharing the engine's scheduler and")
        .unwrap();
    writeln!(out, "storage, so the remaining headroom is behavior evaluation only — see").unwrap();
    writeln!(out, "EXPERIMENTS.md E15 for the breakdown.").unwrap();
    write_report("e15_ops_speed.txt", &out);

    if over_interp < FLOOR {
        eprintln!("E15 regression gate failed: {over_interp:.2}x < {FLOOR:.1}x");
        std::process::exit(1);
    }
}

//! Experiment E17: coding-tree coverage saturation under coverage-guided
//! fuzzing, and the losslessness of fleet-style range splitting.
//!
//! Two questions, per builtin model:
//!
//! 1. **Saturation** — how fast does the per-path coverage of
//!    `ProgramGen`'s coding-tree walk saturate as the program budget
//!    grows? The table reports distinct paths at checkpoints, plus how
//!    few seeds corpus distillation needs to replay the final set.
//! 2. **Fleet losslessness** — splitting the same budget into four
//!    disjoint contiguous ranges (exactly what the `/v1/fuzz` fleet
//!    coordinator does across instances) and merging the four coverage
//!    maps must reproduce the single-instance map **exactly**. This is
//!    the property that makes distributed fuzzing trustworthy, so it is
//!    a hard gate: any mismatch exits non-zero.

use std::fmt::Write as _;

use lisa_conform::{distill, CoverageMap, ProgramGen, Rng};
use lisa_models::{accu16, scalar2, tinyrisc, vliw62};

/// Total program budget per model.
const BUDGET: u64 = 2000;
/// Master seed (programs are pure functions of `(seed, index)`).
const SEED: u64 = 0;
/// Longest synthesized prefix, in words.
const MAX_LEN: usize = 24;
/// Checkpoints at which saturation is sampled.
const CHECKPOINTS: [u64; 7] = [10, 50, 100, 250, 500, 1000, 2000];
/// Instances in the simulated fleet split.
const INSTANCES: u64 = 4;

fn main() {
    let mut out = String::new();
    writeln!(out, "E17 — coverage-guided fuzzing: saturation and fleet losslessness").unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "distinct coding-tree paths after N generated programs (seed {SEED}, max_len {MAX_LEN}):"
    )
    .unwrap();
    writeln!(out).unwrap();
    write!(out, "{:<10}", "model").unwrap();
    for cp in CHECKPOINTS {
        write!(out, " {cp:>7}").unwrap();
    }
    writeln!(out, " {:>10} {:>10}", "distilled", "4-way").unwrap();
    writeln!(out, "{}", "-".repeat(10 + CHECKPOINTS.len() * 8 + 22)).unwrap();

    let mut all_lossless = true;
    let workbenches = [
        ("vliw62", vliw62::workbench().expect("vliw62 builds")),
        ("accu16", accu16::workbench().expect("accu16 builds")),
        ("tinyrisc", tinyrisc::workbench().expect("tinyrisc builds")),
        ("scalar2", scalar2::workbench().expect("scalar2 builds")),
    ];
    for (name, wb) in &workbenches {
        let gen = ProgramGen::new(wb).expect("program generator");

        // Single instance over the whole budget, sampling checkpoints.
        let mut per_program: Vec<CoverageMap> = Vec::with_capacity(BUDGET as usize);
        let mut single = CoverageMap::new();
        write!(out, "{name:<10}").unwrap();
        for index in 0..BUDGET {
            let mut rng = Rng::for_iteration(SEED, index);
            let cov = gen.coverage_of(&gen.gen_program(&mut rng, MAX_LEN));
            single.merge(&cov);
            per_program.push(cov);
            if CHECKPOINTS.contains(&(index + 1)) {
                write!(out, " {:>7}", single.len()).unwrap();
            }
        }

        // Corpus distillation: the minimal greedy seed subset that
        // replays to the full path set.
        let picked = distill(&per_program);
        let mut replayed = CoverageMap::new();
        for &i in &picked {
            replayed.merge(&per_program[i]);
        }
        assert!(replayed.covers(&single), "{name}: distilled replay lost paths");

        // Fleet split: four disjoint contiguous ranges, merged. The
        // merge must be byte-identical to the single-instance map.
        let mut merged = CoverageMap::new();
        let chunk = BUDGET / INSTANCES;
        for i in 0..INSTANCES {
            let mut part = CoverageMap::new();
            for index in i * chunk..(i + 1) * chunk {
                let mut rng = Rng::for_iteration(SEED, index);
                part.merge(&gen.coverage_of(&gen.gen_program(&mut rng, MAX_LEN)));
            }
            merged.merge(&part);
        }
        let lossless = merged == single;
        all_lossless &= lossless;
        writeln!(
            out,
            " {:>10} {:>10}",
            format!("{}/{}", picked.len(), BUDGET),
            if lossless { "exact" } else { "MISMATCH" }
        )
        .unwrap();
    }

    writeln!(out).unwrap();
    writeln!(out, "distilled = smallest greedy seed subset replaying 100% of the final path set")
        .unwrap();
    writeln!(
        out,
        "4-way = coverage from {INSTANCES} disjoint ranges merged vs one whole-range run"
    )
    .unwrap();

    print!("{out}");
    lisa_bench::write_report("e17_fuzz_coverage.txt", &out);
    assert!(all_lossless, "fleet split/merge must be lossless");
}

//! Manual hot-path probe: times engine phases for the vliw62 dot kernel.

use lisa_models::{kernels, vliw62};
use lisa_sim::SimMode;
use std::time::Instant;

fn main() {
    let wb = vliw62::workbench().expect("builds");
    let kernel = kernels::vliw_dot_product(64);
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let mut sim = kernels::load_kernel(&wb, &kernel, mode).expect("loads");
        let t = Instant::now();
        let cycles = wb.run_to_halt(&mut sim, kernel.max_steps).expect("halts");
        let dt = t.elapsed();
        println!(
            "{mode:?}: {cycles} cycles in {:?} = {:.2} us/cycle; stats: {}",
            dt,
            dt.as_secs_f64() * 1e6 / cycles as f64,
            sim.stats()
        );
    }
}

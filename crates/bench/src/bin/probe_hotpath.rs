//! Manual hot-path probe: times engine phases for the vliw62 dot kernel
//! across all three backends, plus micro-models that isolate the fixed
//! per-step engine overhead from decode and behavior-evaluation cost.

use lisa_core::Model;
use lisa_models::{kernels, vliw62};
use lisa_sim::{SimMode, Simulator};
use std::time::Instant;

fn time_micro(name: &str, source: &str, steps: u64) {
    let model = Model::from_source(source).expect("micro model builds");
    for mode in [SimMode::Interpretive, SimMode::Compiled, SimMode::Ops] {
        let mut sim = Simulator::new(&model, mode).expect("sim builds");
        sim.predecode_program_memory();
        let t = Instant::now();
        sim.run(steps).expect("runs");
        let dt = t.elapsed();
        println!("{name:<24} {mode:?}: {:.0} ns/cycle", dt.as_secs_f64() * 1e9 / steps as f64);
    }
}

fn main() {
    // Pure step overhead: a main with an empty behavior.
    time_micro(
        "empty-main",
        r#"RESOURCE { PROGRAM_COUNTER int pc; }
           OPERATION main { BEHAVIOR { } }"#,
        200_000,
    );
    // One statement of behavior.
    time_micro(
        "counter-main",
        r#"RESOURCE { PROGRAM_COUNTER int pc; REGISTER int r0; }
           OPERATION main { BEHAVIOR { r0 = r0 + 1; pc = pc + 1; } }"#,
        200_000,
    );
    // Fetch + decode of a constant word through the decode path.
    time_micro(
        "fetch-decode",
        r#"RESOURCE {
               PROGRAM_COUNTER int pc;
               CONTROL_REGISTER int ir;
               REGISTER int r0;
               PROGRAM_MEMORY int prog_mem[16];
           }
           OPERATION nopi {
               CODING { 0b0000000000000000 }
               SYNTAX { "NOPI" }
               BEHAVIOR { r0 = r0 + 1; }
           }
           OPERATION decode {
               DECLARE { GROUP insn = { nopi }; }
               CODING { ir == insn }
               SYNTAX { insn }
               BEHAVIOR { insn; }
           }
           OPERATION main {
               BEHAVIOR { ir = prog_mem[pc & 15]; decode; pc = pc + 1; }
           }"#,
        200_000,
    );

    let wb = vliw62::workbench().expect("builds");
    let kernel = kernels::vliw_dot_product(64);
    for mode in [SimMode::Interpretive, SimMode::Compiled, SimMode::Ops] {
        let mut sim = kernels::load_kernel(&wb, &kernel, mode).expect("loads");
        let t = Instant::now();
        let cycles = wb.run_to_halt(&mut sim, kernel.max_steps).expect("halts");
        let dt = t.elapsed();
        println!(
            "vliw_dot {mode:?}: {cycles} cycles in {:?} = {:.2} us/cycle; stats: {}",
            dt,
            dt.as_secs_f64() * 1e6 / cycles as f64,
            sim.stats()
        );
    }
}

//! Experiment E16: cost of the architectural-probe layer (`lisa-probe`).
//!
//! The probe hooks in all three backends sit behind the same single
//! `Option`-is-some branch as tracing (E10), so with no probes armed a
//! simulation must run at the fast-path speed. This table measures
//! compiled-mode throughput on the kernel suite under each probe
//! configuration:
//!
//! * **plain** — no probe runtime installed: the disabled path every
//!   user pays by default. Measured twice; the second pass is the
//!   gated "off" column, so the gate also bounds measurement noise
//!   honestly.
//! * **empty** — a probe runtime compiled from the empty spec and
//!   installed. Events now flow through the runtime, which matches
//!   them against zero probes.
//! * **silent** — armed watch/break probes that never fire (an
//!   unreachable breakpoint PC plus a watch on the top data-memory
//!   cell), so the cost is pure matching, not hit emission.
//! * **arch** — full architecture profiling (stage occupancy,
//!   operation/unit utilization, memory heatmaps).
//!
//! Methodology: per kernel, one sample is the summed run time over a
//! calibrated iteration count (~5 ms of simulation), configurations
//! are interleaved within every repeat so clock drift lands on all
//! columns equally, and each cell keeps its best sample.
//!
//! Acceptance gate: probes-disabled geometric-mean overhead < 2%
//! (process exits 1 past the gate, so CI can hold the line).
//!
//! `--quick` shrinks repeats and the per-sample budget for CI.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use lisa_bench::write_report;
use lisa_core::ast::ResourceClass;
use lisa_models::{accu16, kernels, vliw62, Workbench};
use lisa_sim::{ProbeSpec, SimMode, Simulator};

/// The probe configurations under test, in table order.
#[derive(Clone, Copy, PartialEq)]
enum Config {
    /// First plain pass: the reference column.
    Plain,
    /// Second plain pass: the gated disabled path.
    Disabled,
    /// Empty probe set installed — runtime attached, nothing to match.
    Empty,
    /// Armed probes that never fire.
    Silent,
    /// Architecture profiling on.
    Arch,
}

const CONFIGS: [Config; 5] =
    [Config::Plain, Config::Disabled, Config::Empty, Config::Silent, Config::Arch];

/// A watch on the last cell of the model's first data memory plus a
/// breakpoint on a PC value no program ever reaches: every write is
/// matched, nothing ever hits.
fn silent_spec(wb: &Workbench) -> ProbeSpec {
    let watch = wb
        .model()
        .resources()
        .iter()
        .find(|r| r.class == ResourceClass::DataMemory)
        .map(|r| format!("watch {}[{}]; ", r.name, r.element_count().saturating_sub(1)))
        .unwrap_or_default();
    ProbeSpec::parse(&format!("{watch}break -2")).expect("silent spec parses")
}

fn configure(wb: &Workbench, sim: &mut Simulator<'_>, config: Config) {
    match config {
        Config::Plain | Config::Disabled => {}
        Config::Empty => {
            let set = ProbeSpec::parse("").expect("empty spec").compile(sim.model());
            sim.set_probes(set.expect("empty spec compiles"));
        }
        Config::Silent => {
            let set = silent_spec(wb).compile(sim.model()).expect("silent spec compiles");
            sim.set_probes(set);
        }
        Config::Arch => sim.enable_arch_profile(),
    }
}

/// One sample: summed run time over `iters` fresh simulations of the
/// kernel under one configuration (setup and verification excluded).
fn sample(wb: &Workbench, kernel: &kernels::Kernel, config: Config, iters: u32) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let mut sim = kernels::load_kernel(wb, kernel, SimMode::Compiled).expect("kernel loads");
        configure(wb, &mut sim, config);
        let t = Instant::now();
        wb.run_to_halt(&mut sim, kernel.max_steps).expect("kernel halts");
        total += t.elapsed();
        kernels::verify_kernel(wb, kernel, &sim);
        if config == Config::Silent {
            assert_eq!(sim.probe_hits(), 0, "silent probes must not fire");
        }
    }
    total
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let repeats: u32 = if quick { 3 } else { 6 };
    let budget = Duration::from_millis(if quick { 2 } else { 5 });

    let mut out = String::new();
    writeln!(out, "E16 — architectural-probe overhead (compiled mode, best of {repeats})").unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<18} {:>8} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "kernel", "cycles", "plain c/s", "off", "empty", "silent", "arch"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(78)).unwrap();

    let suites: [(Workbench, Vec<kernels::Kernel>); 2] = [
        (vliw62::workbench().expect("vliw62 builds"), kernels::vliw_suite()),
        (accu16::workbench().expect("accu16 builds"), kernels::accu_suite()),
    ];
    // ln-sums per config for the geometric means.
    let mut ln_sums = [0.0f64; CONFIGS.len()];
    let mut n = 0.0f64;
    for (wb, suite) in &suites {
        for kernel in suite {
            // Calibrate the per-sample iteration count off one warm run.
            let mut sim =
                kernels::load_kernel(wb, kernel, SimMode::Compiled).expect("kernel loads");
            let t = Instant::now();
            let cycles = wb.run_to_halt(&mut sim, kernel.max_steps).expect("kernel halts");
            let once = t.elapsed().max(Duration::from_micros(1));
            let iters =
                u32::try_from(budget.as_nanos() / once.as_nanos()).unwrap_or(u32::MAX).clamp(1, 64);

            // Interleave configurations within each repeat so slow
            // drift (thermal, frequency scaling) hits every column.
            let mut best = [Duration::MAX; CONFIGS.len()];
            for _ in 0..repeats {
                for (i, config) in CONFIGS.iter().enumerate() {
                    best[i] = best[i].min(sample(wb, kernel, *config, iters));
                }
            }

            let work = f64::from(iters) * cycles as f64;
            let cps = |d: Duration| work / d.as_secs_f64();
            let ovh = |d: Duration| (cps(best[0]) / cps(d) - 1.0) * 100.0;
            writeln!(
                out,
                "{:<18} {:>8} {:>12.0} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                kernel.name,
                cycles,
                cps(best[0]),
                ovh(best[1]),
                ovh(best[2]),
                ovh(best[3]),
                ovh(best[4]),
            )
            .unwrap();
            for (i, b) in best.iter().enumerate() {
                ln_sums[i] += cps(*b).ln();
            }
            n += 1.0;
        }
    }
    let geo_ovh = |i: usize| ((ln_sums[0] / n).exp() / (ln_sums[i] / n).exp() - 1.0) * 100.0;
    let off_overhead = geo_ovh(1);
    writeln!(out, "{}", "-".repeat(78)).unwrap();
    writeln!(
        out,
        "geometric-mean overheads vs plain: off {off_overhead:.1}%, empty {:.1}%, silent {:.1}%, arch {:.1}%",
        geo_ovh(2),
        geo_ovh(3),
        geo_ovh(4),
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(out, "notes: `off` re-measures the plain configuration, so it is the").unwrap();
    writeln!(out, "disabled path users pay when no probes are armed — the probe").unwrap();
    writeln!(out, "runtime is simply absent and the hot loop takes the same").unwrap();
    writeln!(out, "Option-is-none branch as before the probe layer existed. `empty`").unwrap();
    writeln!(out, "and `silent` bound the armed-but-quiet cost (event construction").unwrap();
    writeln!(out, "plus matching against zero or never-firing probes); `arch` adds").unwrap();
    writeln!(out, "stage/operation counters and memory heatmaps.").unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "acceptance gate: probes-disabled geomean overhead < 2% (measured {off_overhead:.2}%)"
    )
    .unwrap();

    write_report("e16_probe_overhead.txt", &out);

    if off_overhead >= 2.0 {
        eprintln!("E16 GATE FAILED: probes-disabled overhead {off_overhead:.2}% >= 2%");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

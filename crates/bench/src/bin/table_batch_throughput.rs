//! Experiment E9: batch-simulation throughput vs worker count.
//!
//! Runs the full models×kernels matrix (both backends) on the
//! `lisa-exec` worker pool at 1, 2, 4 and 8 workers, reporting aggregate
//! simulated cycles per second and the scaling factor over one worker.
//! Also verifies the engine's determinism contract: every worker count
//! must produce the identical per-job outcome list.

use std::fmt::Write as _;

use lisa_bench::write_report;
use lisa_exec::BatchRunner;
use lisa_models::kernels::full_matrix;
use lisa_sim::SimMode;

fn main() {
    let matrix = full_matrix().expect("models build");
    let scenarios: Vec<_> = matrix
        .iter()
        .flat_map(|(wb, kernels)| {
            kernels.iter().flat_map(move |k| {
                [SimMode::Interpretive, SimMode::Compiled]
                    .into_iter()
                    .map(move |mode| wb.scenario(k, mode))
            })
        })
        .collect();

    let mut out = String::new();
    writeln!(out, "E9 — batch-simulation throughput vs worker count").unwrap();
    writeln!(out, "({} jobs: 4 models x kernel suites x 2 backends)", scenarios.len()).unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<8} {:>12} {:>10} {:>14} {:>9}",
        "workers", "cycles", "time", "cycles/s", "scaling"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(58)).unwrap();

    let mut baseline_cps = 0.0;
    let mut reference_jobs = None;
    for workers in [1usize, 2, 4, 8] {
        // Best of three runs to damp scheduler noise.
        let report = (0..3)
            .map(|_| BatchRunner::new(workers).run(&scenarios))
            .min_by(|a, b| a.elapsed.cmp(&b.elapsed))
            .expect("three runs");
        assert!(report.all_passed(), "failures:\n{}", report.table());
        match &reference_jobs {
            None => reference_jobs = Some(report.jobs.clone()),
            Some(reference) => {
                assert_eq!(reference, &report.jobs, "job outcomes must not depend on worker count")
            }
        }
        let cps = report.cycles_per_sec();
        if workers == 1 {
            baseline_cps = cps;
        }
        writeln!(
            out,
            "{:<8} {:>12} {:>9.1?} {:>14.0} {:>8.2}x",
            workers,
            report.total_cycles(),
            report.elapsed,
            cps,
            if baseline_cps > 0.0 { cps / baseline_cps } else { 1.0 },
        )
        .unwrap();
    }
    writeln!(out, "{}", "-".repeat(58)).unwrap();
    writeln!(out, "identical job outcomes at every worker count (determinism contract).").unwrap();
    write_report("e9_batch_throughput.txt", &out);
}

//! Experiment E12: cost of the always-on metrics layer (`lisa-metrics`).
//!
//! The simulators keep their hot path on plain `u64` counters
//! (`SimStats`) and export to the lock-free registry only at run
//! boundaries (`publish_metrics`), so instrumented runs should cost the
//! same as uninstrumented ones up to a constant per-run publish. This
//! table measures compiled-mode throughput on the kernel suite with and
//! without boundary publishing (the publish time is *included* in the
//! instrumented wall clock), plus the raw per-publish cost.
//!
//! Acceptance gate: geometric-mean overhead < 2%.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use lisa_bench::write_report;
use lisa_metrics::Registry;
use lisa_models::{accu16, kernels, vliw62, Workbench};
use lisa_sim::SimMode;

/// Best-of-`repeats` wall time for one kernel, publishing the run's
/// stats into `registry` (timed) when one is given.
fn measure(
    wb: &Workbench,
    kernel: &kernels::Kernel,
    registry: Option<&Registry>,
    repeats: u32,
) -> (u64, Duration) {
    let mut best = Duration::MAX;
    let mut cycles = 0;
    for _ in 0..repeats {
        let mut sim = kernels::load_kernel(wb, kernel, SimMode::Compiled).expect("kernel loads");
        let t = Instant::now();
        cycles = wb.run_to_halt(&mut sim, kernel.max_steps).expect("kernel halts");
        if let Some(reg) = registry {
            sim.publish_metrics(reg);
        }
        best = best.min(t.elapsed());
        kernels::verify_kernel(wb, kernel, &sim);
    }
    (cycles, best)
}

fn main() {
    let repeats: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(5);
    let registry = Registry::new();
    let mut out = String::new();
    writeln!(out, "E12 — metrics overhead (compiled mode, best of {repeats})").unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<18} {:>8} {:>14} {:>14} {:>9}",
        "kernel", "cycles", "plain c/s", "metrics c/s", "overhead"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(68)).unwrap();

    let suites: [(Workbench, Vec<kernels::Kernel>); 2] = [
        (vliw62::workbench().expect("vliw62 builds"), kernels::vliw_suite()),
        (accu16::workbench().expect("accu16 builds"), kernels::accu_suite()),
    ];
    let mut plain_total = 0.0f64;
    let mut metrics_total = 0.0f64;
    for (wb, suite) in &suites {
        for kernel in suite {
            let (cycles, plain) = measure(wb, kernel, None, repeats);
            let (_, with_metrics) = measure(wb, kernel, Some(&registry), repeats);
            let plain_cps = cycles as f64 / plain.as_secs_f64();
            let metrics_cps = cycles as f64 / with_metrics.as_secs_f64();
            writeln!(
                out,
                "{:<18} {:>8} {:>14.0} {:>14.0} {:>8.1}%",
                kernel.name,
                cycles,
                plain_cps,
                metrics_cps,
                (plain_cps / metrics_cps - 1.0) * 100.0,
            )
            .unwrap();
            plain_total += plain_cps.ln();
            metrics_total += metrics_cps.ln();
        }
    }
    let n = suites.iter().map(|(_, s)| s.len()).sum::<usize>() as f64;
    let overhead = ((plain_total / n).exp() / (metrics_total / n).exp() - 1.0) * 100.0;
    writeln!(out, "{}", "-".repeat(68)).unwrap();
    writeln!(
        out,
        "geometric means: plain {:.0} c/s, metrics {:.0} c/s ({overhead:.1}% overhead)",
        (plain_total / n).exp(),
        (metrics_total / n).exp(),
    )
    .unwrap();

    // Raw boundary-publish cost: how long one `publish_metrics` takes
    // once the series handles exist in the registry.
    let wb = vliw62::workbench().expect("vliw62 builds");
    let kernel = &kernels::vliw_suite()[0];
    let mut sim = kernels::load_kernel(&wb, kernel, SimMode::Compiled).expect("loads");
    wb.run_to_halt(&mut sim, kernel.max_steps).expect("halts");
    sim.publish_metrics(&registry); // warm the interned handles
    let publishes = 10_000u32;
    let t = Instant::now();
    for _ in 0..publishes {
        sim.publish_metrics(&registry);
    }
    let per_publish = t.elapsed() / publishes;
    writeln!(out, "per-publish boundary cost: {per_publish:?} (amortized over a whole run)")
        .unwrap();
    writeln!(out).unwrap();
    writeln!(out, "acceptance gate: instrumented runs within 2% of plain runs — the hot").unwrap();
    writeln!(out, "path stays on plain u64 SimStats; atomics are touched only per run.").unwrap();
    write_report("e12_metrics_overhead.txt", &out);
}

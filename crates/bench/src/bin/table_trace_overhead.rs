//! Experiment E10: cost of the observability layer (`lisa-trace`).
//!
//! The tracing hooks in the simulators are guarded by a single
//! `Option`-is-some check, so with observability off a simulation should
//! run at the same speed as before the hooks existed. This table
//! measures compiled-mode throughput on the kernel suite under each
//! observability configuration: disabled, ring-buffer sink (last 4096
//! events), profile aggregation, and JSON-lines streaming to a null
//! writer.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use lisa_bench::write_report;
use lisa_models::{accu16, kernels, vliw62, Workbench};
use lisa_sim::{JsonLinesSink, RingBufferSink, SimMode, Simulator};

/// The observability configurations under test, in table order.
const CONFIGS: [&str; 4] = ["off", "ring", "profile", "jsonl"];

fn configure(sim: &mut Simulator<'_>, config: &str) {
    match config {
        "off" => {}
        "ring" => sim.set_sink(Box::new(RingBufferSink::new(4096))),
        "profile" => sim.enable_profile(),
        "jsonl" => {
            let names = sim.name_table();
            sim.set_sink(Box::new(JsonLinesSink::new(std::io::sink(), names)));
        }
        other => unreachable!("unknown config {other}"),
    }
}

/// Best-of-`repeats` wall time for one kernel under one configuration.
fn measure(
    wb: &Workbench,
    kernel: &kernels::Kernel,
    config: &str,
    repeats: u32,
) -> (u64, Duration) {
    let mut best = Duration::MAX;
    let mut cycles = 0;
    for _ in 0..repeats {
        let mut sim = kernels::load_kernel(wb, kernel, SimMode::Compiled).expect("kernel loads");
        configure(&mut sim, config);
        let t = Instant::now();
        cycles = wb.run_to_halt(&mut sim, kernel.max_steps).expect("kernel halts");
        best = best.min(t.elapsed());
        kernels::verify_kernel(wb, kernel, &sim);
    }
    (cycles, best)
}

fn main() {
    let repeats: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(3);
    let mut out = String::new();
    writeln!(out, "E10 — tracing overhead (compiled mode, best of {repeats})").unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<18} {:>8} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "kernel", "cycles", "off c/s", "ring c/s", "profile c/s", "jsonl c/s", "ring ovh"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(90)).unwrap();

    let suites: [(Workbench, Vec<kernels::Kernel>); 2] = [
        (vliw62::workbench().expect("vliw62 builds"), kernels::vliw_suite()),
        (accu16::workbench().expect("accu16 builds"), kernels::accu_suite()),
    ];
    let mut off_total = 0.0f64;
    let mut ring_total = 0.0f64;
    for (wb, suite) in &suites {
        for kernel in suite {
            let mut cps = [0.0f64; 4];
            let mut cycles = 0;
            for (slot, config) in CONFIGS.iter().enumerate() {
                let (c, best) = measure(wb, kernel, config, repeats);
                cycles = c;
                cps[slot] = c as f64 / best.as_secs_f64();
            }
            writeln!(
                out,
                "{:<18} {:>8} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>7.1}%",
                kernel.name,
                cycles,
                cps[0],
                cps[1],
                cps[2],
                cps[3],
                (cps[0] / cps[1] - 1.0) * 100.0,
            )
            .unwrap();
            off_total += cps[0].ln();
            ring_total += cps[1].ln();
        }
    }
    let n = suites.iter().map(|(_, s)| s.len()).sum::<usize>() as f64;
    writeln!(out, "{}", "-".repeat(90)).unwrap();
    writeln!(
        out,
        "geometric means: off {:.0} c/s, ring {:.0} c/s ({:.1}% overhead)",
        (off_total / n).exp(),
        (ring_total / n).exp(),
        ((off_total / n).exp() / (ring_total / n).exp() - 1.0) * 100.0,
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(out, "acceptance gate: with observability off, throughput must match the").unwrap();
    writeln!(out, "pre-lisa-trace baseline within noise (<3%) — see docs/e10_trace_overhead.txt.")
        .unwrap();
    write_report("e10_trace_overhead.txt", &out);
}

//! Experiment E8 (supplementary): architecture exploration turnaround —
//! the workflow the paper positions LISA for ("the flexibility of
//! software allows late design changes, thus shortening design cycles",
//! §1). Adds a fused dual-fetch MAC (`MACP`) to the accu16 *description*,
//! regenerates all tools, and measures both the regeneration cost and
//! the kernel-level win.

use std::fmt::Write as _;
use std::time::Instant;

use lisa_bench::write_report;
use lisa_models::{accu16, Workbench};
use lisa_sim::SimMode;

const MACP_OP: &str = r#"
OPERATION macp {
    CODING { 0b011000 0bx[18] }
    SYNTAX { "MACP" }
    SEMANTICS { MAC_DUAL_POSTINC(accu, data_mem1[ar0], data_mem1[ar1]) }
    BEHAVIOR {
        r[0] = data_mem1[ar[0] & 4095];
        ar[0] = ar[0] + 1;
        r[1] = data_mem1[ar[1] & 4095];
        ar[1] = ar[1] + 1;
        long sum = sext(accu, 40) + r[0] * r[1];
        if (sat_mode) {
            accu = saturate(sum, 40);
        } else {
            accu = sum;
        }
    }
}

OPERATION decode {"#;

fn dot_program(n: usize, fused: bool) -> String {
    let body = if fused {
        "loop:   MACP\n        DBNZ loop\n"
    } else {
        "loop:   MOVP r0, a0\n        MOVP r1, a1\n        MAC r0, r1\n        DBNZ loop\n"
    };
    format!(
        ".org 0x100\n        CLR\n        SSAT 0\n        LAR a0, 0\n        LAR a1, 256\n        LDLC {n}\n{body}        SAT16\n        STA 512\n        HLT\n"
    )
}

fn run_dot(wb: &Workbench, n: usize, fused: bool) -> (u64, i64) {
    let program =
        lisa_asm::Assembler::new(wb.model()).assemble(&dot_program(n, fused)).expect("assembles");
    let mut sim = wb.simulator(SimMode::Compiled).expect("sim");
    let pmem = wb.model().resource_by_name("prog_mem").expect("pmem").clone();
    for (i, &word) in program.words.iter().enumerate() {
        let addr = program.origin as i64 + i as i64;
        sim.state_mut()
            .write(&pmem, &[addr], lisa_bits::Bits::from_u128_wrapped(32, word))
            .expect("loads");
    }
    let dmem = wb.model().resource_by_name("data_mem1").expect("dmem").clone();
    for i in 0..n as i64 {
        sim.state_mut().write_int(&dmem, &[i], i % 7 - 3).unwrap();
        sim.state_mut().write_int(&dmem, &[256 + i], (i * 3) % 11 - 5).unwrap();
    }
    sim.predecode_program_memory();
    let cycles = wb.run_to_halt(&mut sim, 100_000).expect("halts");
    (cycles, sim.state().read_int(&dmem, &[512]).unwrap())
}

fn main() {
    let mut out = String::new();
    writeln!(out, "E8 — architecture exploration turnaround (ASIP workflow, paper §1/§5)").unwrap();
    writeln!(out).unwrap();
    let n = 256;

    let base = accu16::workbench().expect("baseline builds");
    let (base_cycles, base_result) = run_dot(&base, n, false);

    let t = Instant::now();
    let extended_source = accu16::SOURCE.replacen("OPERATION decode {", MACP_OP, 1).replacen(
        "nop || clr ||",
        "nop || clr || macp ||",
        1,
    );
    let extended =
        Workbench::from_source(Box::leak(extended_source.into_boxed_str()), "prog_mem", "halt")
            .expect("extended builds");
    // Force full tool generation for an honest turnaround time.
    let _decoder = extended.decoder().expect("decoder");
    let _sim = extended.simulator(SimMode::Compiled).expect("compiled sim");
    let regen = t.elapsed();
    let (ext_cycles, ext_result) = run_dot(&extended, n, true);

    assert_eq!(base_result, ext_result, "bit-accurate custom instruction");
    writeln!(out, "{:<28} {:>10} {:>12}", "architecture", "cycles", "dot result").unwrap();
    writeln!(out, "{}", "-".repeat(54)).unwrap();
    writeln!(out, "{:<28} {:>10} {:>12}", "accu16 (baseline)", base_cycles, base_result).unwrap();
    writeln!(out, "{:<28} {:>10} {:>12}", "accu16 + MACP", ext_cycles, ext_result).unwrap();
    writeln!(out, "{}", "-".repeat(54)).unwrap();
    writeln!(
        out,
        "kernel speedup: {:.2}x; full tool regeneration took {}",
        base_cycles as f64 / ext_cycles as f64,
        lisa_bench::fmt_duration(regen)
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(out, "paper context: the C6201 model regenerated in 30 s (§4.1); iteration").unwrap();
    writeln!(out, "at this cost is what makes description-driven ASIP exploration work.").unwrap();
    write_report("e8_exploration.txt", &out);
}

//! Experiment E5: compile-time `SWITCH`/`CASE` specialisation versus
//! run-time operand checks.
//!
//! Paper §3.4 (Example 6): "The selection of the respective syntax and
//! expression can already be determined at compile-time thus avoiding to
//! check the bit at run-time of the simulation." This module builds two
//! models of the *same* two-sided register machine:
//!
//! * [`SPECIALIZED`] — the register operand uses the paper's
//!   `SWITCH (Side)` structuring, so the A/B file selection is resolved
//!   when the instruction is decoded (once, in compiled mode);
//! * [`RUNTIME`] — the register operand exposes the raw register number
//!   and every instruction behavior re-tests the side bit with `if`/`?:`
//!   on every execution.
//!
//! Both models share the encoding, the ISA and the cycle structure, so
//! any wall-clock difference is the cost of the run-time checks.

use std::time::{Duration, Instant};

use lisa_models::{Workbench, WorkbenchError};
use lisa_sim::SimMode;

/// Shared model text: resources, control flow, fetch/decode driver.
/// `{REG_OP}` and the instruction behaviors differ per variant.
macro_rules! machine {
    ($reg_op:expr, $add:expr, $sub:expr, $xor:expr, $mvk:expr) => {
        concat!(
            r#"
RESOURCE {
    PROGRAM_COUNTER int pc;
    CONTROL_REGISTER int ir;
    REGISTER int A[16];
    REGISTER int B[16];
    REGISTER int cnt;
    REGISTER bit halt;
    PROGRAM_MEMORY int pmem[256];
}

OPERATION side_a { CODING { 0b0 } SYNTAX { "a" } }
OPERATION side_b { CODING { 0b1 } SYNTAX { "b" } }
"#,
            $reg_op,
            r#"
OPERATION imm8 {
    DECLARE { LABEL value; }
    CODING { value:0bx[8] }
    SYNTAX { value:#s }
    EXPRESSION { sext(value, 8) }
}

OPERATION addr8 {
    DECLARE { LABEL value; }
    CODING { value:0bx[8] }
    SYNTAX { value:#u }
    EXPRESSION { value }
}

OPERATION count16 {
    DECLARE { LABEL value; }
    CODING { value:0bx[16] }
    SYNTAX { value:#u }
    EXPRESSION { value }
}

OPERATION add {
    DECLARE { GROUP Dst, S1, S2 = { reg }; }
    CODING { 0b0001 Dst S1 S2 0bx[9] }
    SYNTAX { "ADD" Dst "," S1 "," S2 }
"#,
            $add,
            r#"
}

OPERATION sub {
    DECLARE { GROUP Dst, S1, S2 = { reg }; }
    CODING { 0b0010 Dst S1 S2 0bx[9] }
    SYNTAX { "SUB" Dst "," S1 "," S2 }
"#,
            $sub,
            r#"
}

OPERATION xor_op {
    DECLARE { GROUP Dst, S1, S2 = { reg }; }
    CODING { 0b0011 Dst S1 S2 0bx[9] }
    SYNTAX { "XOR" Dst "," S1 "," S2 }
"#,
            $xor,
            r#"
}

OPERATION mvk {
    DECLARE { GROUP Dst = { reg }; GROUP Val = { imm8 }; }
    CODING { 0b0100 Dst Val 0bx[11] }
    SYNTAX { "MVK" Dst "," Val }
"#,
            $mvk,
            r#"
}

OPERATION ldc {
    DECLARE { GROUP Val = { count16 }; }
    CODING { 0b0101 Val 0bx[8] }
    SYNTAX { "LDC" Val }
    BEHAVIOR { cnt = Val; }
}

OPERATION dbnz {
    DECLARE { GROUP Target = { addr8 }; }
    CODING { 0b0110 Target 0bx[16] }
    SYNTAX { "DBNZ" Target }
    BEHAVIOR {
        cnt = cnt - 1;
        if (cnt != 0) { pc = Target - 1; }
    }
}

OPERATION hlt {
    CODING { 0b0111 0bx[24] }
    SYNTAX { "HLT" }
    BEHAVIOR { halt = 1; }
}

OPERATION decode {
    DECLARE { GROUP Instruction = { add || sub || xor_op || mvk || ldc || dbnz || hlt }; }
    CODING { ir == Instruction }
    SYNTAX { Instruction }
    BEHAVIOR { Instruction; }
}

OPERATION main {
    BEHAVIOR {
        if (halt == 0) {
            ir = pmem[pc];
            decode;
            pc = pc + 1;
        }
    }
}
"#
        )
    };
}

/// The specialised machine: paper Example 6's `SWITCH (Side)` operand.
pub const SPECIALIZED: &str = machine!(
    r#"
OPERATION reg {
    DECLARE { GROUP Side = { side_a || side_b }; LABEL index; }
    CODING { Side index:0bx[4] }
    SWITCH (Side) {
        CASE side_a: { SYNTAX { "A" index:#u } EXPRESSION { A[index] } }
        CASE side_b: { SYNTAX { "B" index:#u } EXPRESSION { B[index] } }
    }
}
"#,
    "    BEHAVIOR { Dst = S1 + S2; }",
    "    BEHAVIOR { Dst = S1 - S2; }",
    "    BEHAVIOR { Dst = S1 ^ S2; }",
    "    BEHAVIOR { Dst = Val; }"
);

/// The run-time-check machine: the operand is the raw register number and
/// every behavior tests the side bit on every execution.
pub const RUNTIME: &str = machine!(
    r#"
OPERATION reg {
    DECLARE { GROUP Side = { side_a || side_b }; LABEL index; }
    CODING { Side index:0bx[4] }
    SWITCH (Side) {
        CASE side_a: { SYNTAX { "A" index:#u } EXPRESSION { index } }
        CASE side_b: { SYNTAX { "B" index:#u } EXPRESSION { 16 + index } }
    }
}
"#,
    r#"    BEHAVIOR {
        int v = ((S1 >= 16) ? B[S1 - 16] : A[S1]) + ((S2 >= 16) ? B[S2 - 16] : A[S2]);
        if (Dst >= 16) { B[Dst - 16] = v; } else { A[Dst] = v; }
    }"#,
    r#"    BEHAVIOR {
        int v = ((S1 >= 16) ? B[S1 - 16] : A[S1]) - ((S2 >= 16) ? B[S2 - 16] : A[S2]);
        if (Dst >= 16) { B[Dst - 16] = v; } else { A[Dst] = v; }
    }"#,
    r#"    BEHAVIOR {
        int v = ((S1 >= 16) ? B[S1 - 16] : A[S1]) ^ ((S2 >= 16) ? B[S2 - 16] : A[S2]);
        if (Dst >= 16) { B[Dst - 16] = v; } else { A[Dst] = v; }
    }"#,
    r#"    BEHAVIOR {
        if (Dst >= 16) { B[Dst - 16] = Val; } else { A[Dst] = Val; }
    }"#
);

/// The benchmark workload: an arithmetic loop mixing both register sides,
/// `iterations` times around.
#[must_use]
pub fn workload(iterations: u32) -> String {
    format!(
        r#"
        MVK A2, 1
        MVK B2, 2
        MVK A3, 3
        MVK B3, 5
        LDC {iterations}
loop:   ADD A4, A2, B2
        ADD B4, A3, B3
        SUB A5, A4, B4
        XOR B5, A4, A5
        ADD A2, A2, B5
        SUB B2, B2, A5
        ADD A3, A3, B4
        XOR B3, B3, A4
        DBNZ loop
        HLT
"#
    )
}

/// Builds the workbench for one of the two machines.
///
/// # Errors
///
/// Returns the usual workbench errors (the sources are covered by tests).
pub fn workbench(specialized: bool) -> Result<Workbench, WorkbenchError> {
    Workbench::from_source(if specialized { SPECIALIZED } else { RUNTIME }, "pmem", "halt")
}

/// Runs the workload once in the given mode, returning cycles and wall
/// time.
///
/// # Errors
///
/// Propagates assembly/simulation errors.
pub fn run_workload(
    wb: &Workbench,
    iterations: u32,
    mode: SimMode,
) -> Result<(u64, Duration), WorkbenchError> {
    let program = lisa_asm::Assembler::new(wb.model())
        .assemble(&workload(iterations))
        .expect("workload assembles");
    let mut sim = wb.simulator(mode)?;
    sim.load_program("pmem", &program.words)?;
    let t = Instant::now();
    let cycles = wb.run_to_halt(&mut sim, 64 * u64::from(iterations) + 1000)?;
    Ok((cycles, t.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_machines_compute_identical_results() {
        let spec = workbench(true).expect("specialized builds");
        let rt = workbench(false).expect("runtime builds");
        let program = workload(10);
        let mut results = Vec::new();
        for wb in [&spec, &rt] {
            let image = lisa_asm::Assembler::new(wb.model()).assemble(&program).expect("assembles");
            let mut sim = wb.simulator(SimMode::Compiled).expect("sim");
            sim.load_program("pmem", &image.words).unwrap();
            wb.run_to_halt(&mut sim, 10_000).expect("halts");
            let a = wb.model().resource_by_name("A").unwrap();
            let b = wb.model().resource_by_name("B").unwrap();
            let snapshot: Vec<i64> = (0..16)
                .map(|i| sim.state().read_int(a, &[i]).unwrap())
                .chain((0..16).map(|i| sim.state().read_int(b, &[i]).unwrap()))
                .collect();
            results.push(snapshot);
        }
        assert_eq!(results[0], results[1], "machines diverged");
        assert!(results[0].iter().any(|&v| v != 0), "workload did something");
    }

    #[test]
    fn cycle_counts_match_between_machines() {
        let spec = workbench(true).unwrap();
        let rt = workbench(false).unwrap();
        let (c1, _) = run_workload(&spec, 20, SimMode::Compiled).unwrap();
        let (c2, _) = run_workload(&rt, 20, SimMode::Compiled).unwrap();
        assert_eq!(c1, c2, "specialisation must not change cycle counts");
    }
}

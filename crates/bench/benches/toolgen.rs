//! E2 — tool-generation time under Criterion: parse + analyse, decoder
//! generation, compiled-simulator lowering, for each bundled model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lisa_core::Model;
use lisa_models::{accu16, tinyrisc, vliw62};
use lisa_sim::{SimMode, Simulator};
use std::hint::black_box;

fn models() -> Vec<(&'static str, &'static str)> {
    vec![("vliw62", vliw62::SOURCE), ("accu16", accu16::SOURCE), ("tinyrisc", tinyrisc::SOURCE)]
}

fn bench_parse_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("toolgen/parse_analyze");
    for (name, source) in models() {
        group.bench_with_input(BenchmarkId::from_parameter(name), source, |b, src| {
            b.iter(|| Model::from_source(black_box(src)).expect("builds"));
        });
    }
    group.finish();
}

fn bench_decoder_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("toolgen/decoder");
    for (name, source) in models() {
        let model = Model::from_source(source).expect("builds");
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, m| {
            b.iter(|| lisa_isa::Decoder::new(black_box(m)).expect("decoder"));
        });
    }
    group.finish();
}

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("toolgen/compiled_lowering");
    for (name, source) in models() {
        let model = Model::from_source(source).expect("builds");
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, m| {
            b.iter(|| Simulator::new(black_box(m), SimMode::Compiled).expect("lowers"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse_analyze, bench_decoder_generation, bench_lowering);
criterion_main!(benches);

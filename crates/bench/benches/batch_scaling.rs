//! E9 — batch-runner scaling: the full models×kernels matrix on 1, 2, 4
//! and 8 workers. Throughput is in simulated cycles, so criterion's
//! rate column reads directly as cycles/second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lisa_exec::BatchRunner;
use lisa_models::kernels::full_matrix;
use lisa_sim::SimMode;

fn bench_scaling(c: &mut Criterion) {
    let matrix = full_matrix().expect("models build");
    let scenarios: Vec<_> = matrix
        .iter()
        .flat_map(|(wb, kernels)| {
            kernels.iter().flat_map(move |k| {
                [SimMode::Interpretive, SimMode::Compiled]
                    .into_iter()
                    .map(move |mode| wb.scenario(k, mode))
            })
        })
        .collect();
    let cycles = BatchRunner::new(1).run(&scenarios).total_cycles();

    let mut group = c.benchmark_group("batch_scaling");
    group.throughput(Throughput::Elements(cycles));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &workers| {
            b.iter(|| {
                let report = BatchRunner::new(workers).run(&scenarios);
                assert!(report.all_passed());
                report
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);

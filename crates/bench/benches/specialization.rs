//! E5 — compile-time SWITCH/CASE specialisation vs run-time operand
//! checks (paper §3.4, Example 6), on identical workloads and cycle
//! counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lisa_bench::specialization::{run_workload, workbench};
use lisa_sim::SimMode;

fn bench_specialization(c: &mut Criterion) {
    let iterations = 2_000u32;
    let spec = workbench(true).expect("specialized builds");
    let rt = workbench(false).expect("runtime builds");
    let (cycles, _) = run_workload(&spec, iterations, SimMode::Compiled).expect("probe");

    let mut group = c.benchmark_group("specialization");
    group.throughput(Throughput::Elements(cycles));
    for (name, wb) in [("switch_specialised", &spec), ("runtime_checks", &rt)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), wb, |b, wb| {
            b.iter(|| run_workload(wb, iterations, SimMode::Compiled).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_specialization);
criterion_main!(benches);

//! E3 — compiled vs interpretive simulation speed (the paper's headline
//! contrast, §3.3). Each benchmark runs one DSP kernel to completion and
//! reports throughput in simulated cycles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lisa_models::{accu16, kernels, vliw62, Workbench};
use lisa_sim::SimMode;

fn bench_suite(c: &mut Criterion, label: &str, wb: &Workbench, suite: &[kernels::Kernel]) {
    for kernel in suite {
        // Cycle count is mode-independent; measure once for throughput.
        let mut probe = kernels::load_kernel(wb, kernel, SimMode::Interpretive).expect("loads");
        let cycles = wb.run_to_halt(&mut probe, kernel.max_steps).expect("halts");

        let mut group = c.benchmark_group(format!("sim_speed/{label}/{}", kernel.name));
        group.throughput(Throughput::Elements(cycles));
        for (mode_name, mode) in
            [("interpretive", SimMode::Interpretive), ("compiled", SimMode::Compiled)]
        {
            group.bench_function(BenchmarkId::from_parameter(mode_name), |b| {
                b.iter_batched(
                    || kernels::load_kernel(wb, kernel, mode).expect("loads"),
                    |mut sim| {
                        wb.run_to_halt(&mut sim, kernel.max_steps).expect("halts");
                        sim
                    },
                    criterion::BatchSize::SmallInput,
                );
            });
        }
        group.finish();
    }
}

fn bench_vliw(c: &mut Criterion) {
    let wb = vliw62::workbench().expect("builds");
    bench_suite(c, "vliw62", &wb, &kernels::vliw_suite());
}

fn bench_accu(c: &mut Criterion) {
    let wb = accu16::workbench().expect("builds");
    bench_suite(c, "accu16", &wb, &kernels::accu_suite());
}

criterion_group!(benches, bench_vliw, bench_accu);
criterion_main!(benches);

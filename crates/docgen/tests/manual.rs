//! Generated-manual guarantees: output is deterministic (same model
//! source → byte-identical manual, across separately built model
//! databases) and complete (every instruction reachable from the decode
//! root appears with its assembly syntax).

use lisa_core::model::{CodingTarget, Model, OpId, SynElem};
use lisa_docgen::manual;

/// Instruction operations reachable from the decode root's coding —
/// the same set the manual's Instructions section documents.
fn instruction_ops(model: &Model) -> Vec<OpId> {
    let mut ops = Vec::new();
    let Some(&root) = model.decode_roots().first() else { return ops };
    let root_op = model.operation(root);
    for variant in &root_op.variants {
        let Some(coding) = &variant.coding else { continue };
        for field in &coding.fields {
            match &field.target {
                CodingTarget::Group(g) => {
                    for &m in &root_op.groups[*g].members {
                        if !ops.contains(&m) {
                            ops.push(m);
                        }
                    }
                }
                CodingTarget::Op(o) if !ops.contains(o) => ops.push(*o),
                _ => {}
            }
        }
    }
    ops
}

/// The leading literal (mnemonic) of every syntax variant of `op`.
fn mnemonics(model: &Model, op: OpId) -> Vec<String> {
    let mut out = Vec::new();
    for variant in &model.operation(op).variants {
        let Some(syntax) = &variant.syntax else { continue };
        if let Some(SynElem::Literal(text)) = syntax.first() {
            if !out.contains(text) {
                out.push(text.clone());
            }
        }
    }
    out
}

fn check_model(name: &str, source: &str) {
    // Determinism within one model database…
    let model = Model::from_source(source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let first = manual(&model, name);
    assert_eq!(first, manual(&model, name), "{name}: manual is not deterministic");

    // …and across independently built databases of the same source
    // (catches any map-iteration-order leak in model building).
    let rebuilt = Model::from_source(source).unwrap();
    assert_eq!(first, manual(&rebuilt, name), "{name}: manual differs across model builds");

    // Structural completeness.
    assert!(first.contains(&format!("# {name} Instruction Set Manual")));
    assert!(first.contains("## Resources"), "{name}: missing resources section");
    assert!(first.contains("## Instructions"), "{name}: missing instructions section");

    // Every instruction appears as a section, with its syntax rendered.
    let ops = instruction_ops(&model);
    assert!(!ops.is_empty(), "{name}: no instructions found under the decode root");
    for op in ops {
        let op_name = &model.operation(op).name;
        assert!(
            first.contains(&format!("### `{op_name}`")),
            "{name}: instruction `{op_name}` has no manual section"
        );
        for mnemonic in mnemonics(&model, op) {
            assert!(
                first.contains(&mnemonic),
                "{name}: mnemonic `{mnemonic}` of `{op_name}` not mentioned"
            );
        }
    }

    // Each instruction section shows at least one syntax line.
    let sections = first.matches("### `").count();
    let syntax_lines = first.matches("Syntax: `").count();
    assert!(
        syntax_lines >= sections,
        "{name}: {sections} instruction sections but only {syntax_lines} syntax lines"
    );
}

#[test]
fn tinyrisc_manual_is_deterministic_and_complete() {
    check_model("tinyrisc", lisa_models::tinyrisc::SOURCE);
}

#[test]
fn vliw62_manual_is_deterministic_and_complete() {
    check_model("vliw62", lisa_models::vliw62::SOURCE);
}

#[test]
fn vliw62_manual_documents_the_pipelines() {
    let wb = lisa_models::vliw62::workbench().unwrap();
    let text = manual(wb.model(), "vliw62");
    assert!(text.contains("## Pipelines"), "pipeline section missing");
    for stage in ["PG", "PS", "PW", "PR", "DP"] {
        assert!(text.contains(stage), "fetch stage {stage} missing from pipeline section");
    }
}

//! Automatic text-book documentation generated from LISA model databases.
//!
//! The paper argues that a LISA description is "a very valuable
//! replacement for the textual documentation written by designers which
//! is usually faulty and not up-to-date" and that the approach "even
//! enables the automatic generation of such text book documentation"
//! (§1.1). This crate renders a model database as a Markdown ISA manual:
//! resource tables, pipeline diagrams, and one section per instruction
//! with encoding layout, assembly syntax, semantics and behavior.
//!
//! # Examples
//!
//! ```
//! use lisa_docgen::manual;
//! use lisa_models::tinyrisc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wb = tinyrisc::workbench()?;
//! let text = manual(wb.model(), "tinyrisc");
//! assert!(text.contains("# tinyrisc Instruction Set Manual"));
//! assert!(text.contains("## Resources"));
//! assert!(text.contains("ADD"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use lisa_core::ast::{NumFormat, ResourceClass};
use lisa_core::model::{CodingTarget, Model, ModelStats, OpId, Operation, SynElem};

/// Renders the complete Markdown manual for a model.
#[must_use]
pub fn manual(model: &Model, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title} Instruction Set Manual\n");
    let _ = writeln!(
        out,
        "*Generated from the LISA machine description — the single source\nfor simulator, assembler, disassembler and this manual.*\n"
    );

    let stats = ModelStats::of(model);
    let _ = writeln!(out, "## Summary\n");
    let _ = writeln!(out, "| Metric | Value |");
    let _ = writeln!(out, "|--------|-------|");
    let _ = writeln!(out, "| Resources | {} |", stats.resources);
    let _ = writeln!(out, "| Operations | {} |", stats.operations);
    let _ = writeln!(out, "| Instructions | {} |", stats.instructions);
    let _ = writeln!(out, "| Instruction aliases | {} |", stats.aliases);
    let _ = writeln!(out, "| Pipelines | {} ({} stages) |", stats.pipelines, stats.pipeline_stages);
    let _ = writeln!(out);

    resources_section(model, &mut out);
    pipelines_section(model, &mut out);
    instructions_section(model, &mut out);
    out
}

fn resources_section(model: &Model, out: &mut String) {
    let _ = writeln!(out, "## Resources\n");
    let _ = writeln!(out, "| Name | Class | Width | Elements |");
    let _ = writeln!(out, "|------|-------|-------|----------|");
    for res in model.resources() {
        let class = match res.class {
            ResourceClass::Plain => "—",
            ResourceClass::Register => "register",
            ResourceClass::ControlRegister => "control register",
            ResourceClass::ProgramCounter => "program counter",
            ResourceClass::DataMemory => "data memory",
            ResourceClass::ProgramMemory => "program memory",
        };
        let dims = if res.dims.is_empty() {
            "scalar".to_owned()
        } else {
            res.dims
                .iter()
                .map(|d| match d {
                    lisa_core::ast::Dim::Size(n) => format!("{n}"),
                    lisa_core::ast::Dim::Range(lo, hi) => format!("{lo:#x}..{hi:#x}"),
                })
                .collect::<Vec<_>>()
                .join(" × ")
        };
        let _ = writeln!(out, "| `{}` | {class} | {} | {dims} |", res.name, res.ty.width());
    }
    let _ = writeln!(out);
}

fn pipelines_section(model: &Model, out: &mut String) {
    if model.pipelines().is_empty() {
        return;
    }
    let _ = writeln!(out, "## Pipelines\n");
    for pipe in model.pipelines() {
        let stages = pipe.stages.join(" → ");
        let _ = writeln!(out, "* **{}**: {stages}", pipe.name);
    }
    let _ = writeln!(out);
}

/// Instruction operations in the decode root's group order, aliases
/// included.
fn instruction_ops(model: &Model) -> Vec<OpId> {
    let mut ops = Vec::new();
    let Some(&root) = model.decode_roots().first() else { return ops };
    let root_op = model.operation(root);
    for variant in &root_op.variants {
        let Some(coding) = &variant.coding else { continue };
        for field in &coding.fields {
            match &field.target {
                CodingTarget::Group(g) => {
                    for &m in &root_op.groups[*g].members {
                        if !ops.contains(&m) {
                            ops.push(m);
                        }
                    }
                }
                CodingTarget::Op(o) if !ops.contains(o) => {
                    ops.push(*o);
                }
                _ => {}
            }
        }
    }
    ops
}

fn instructions_section(model: &Model, out: &mut String) {
    let ops = instruction_ops(model);
    if ops.is_empty() {
        return;
    }
    let _ = writeln!(out, "## Instructions\n");
    for id in ops {
        let op = model.operation(id);
        instruction_entry(model, op, out);
    }
}

fn instruction_entry(model: &Model, op: &Operation, out: &mut String) {
    let alias = if op.alias { " *(alias)*" } else { "" };
    let _ = writeln!(out, "### `{}`{alias}\n", op.name);
    for (section, text) in &op.customs {
        let _ = writeln!(out, "*{}*: {text}\n", section.to_lowercase());
    }
    if let Some((pid, stage)) = op.stage {
        let pipe = model.pipeline(pid);
        let _ = writeln!(out, "*Executes in* `{}.{}`.\n", pipe.name, pipe.stages[stage]);
    }
    for (vidx, variant) in op.variants.iter().enumerate() {
        if op.variants.len() > 1 {
            let guard: Vec<String> = variant
                .guard
                .iter()
                .map(|(g, m)| format!("{} = {}", op.groups[*g].name, model.operation(*m).name))
                .collect();
            let label = if guard.is_empty() { "default".to_owned() } else { guard.join(", ") };
            let _ = writeln!(out, "**Variant {} ({label})**\n", vidx + 1);
        }
        if let Some(syntax) = &variant.syntax {
            let _ = writeln!(out, "Syntax: `{}`", render_syntax(model, op, syntax));
        }
        if let Some(coding) = &variant.coding {
            let fields: Vec<String> = coding
                .fields
                .iter()
                .map(|f| {
                    let what = match &f.target {
                        CodingTarget::Pattern(p) => format!("`{p}`"),
                        CodingTarget::Label { label, .. } => {
                            format!("{}[{}]", op.labels[*label], f.width)
                        }
                        CodingTarget::Group(g) => {
                            format!("{}[{}]", op.groups[*g].name, f.width)
                        }
                        CodingTarget::Op(o) => {
                            format!("{}[{}]", model.operation(*o).name, f.width)
                        }
                    };
                    format!("{what}@{}", f.offset)
                })
                .collect();
            let _ = writeln!(
                out,
                "\nEncoding ({} bits, msb first): {}",
                coding.width(),
                fields.join(" ")
            );
        }
        if let Some(semantics) = &variant.semantics {
            let _ = writeln!(out, "\nSemantics: `{semantics}`");
        }
        if let Some(behavior) = &variant.behavior {
            let printed = lisa_core::printer::print(&behavior_only(behavior));
            let body = printed
                .lines()
                .skip_while(|l| !l.contains("BEHAVIOR"))
                .skip(1)
                .take_while(|l| l.trim() != "}")
                .collect::<Vec<_>>()
                .join("\n");
            let _ = writeln!(out, "\nBehavior:\n\n```c\n{}\n```", body.trim_end());
        }
        let _ = writeln!(out);
    }
}

/// Wraps a behavior block in a dummy operation so the AST printer can
/// render it.
fn behavior_only(block: &lisa_core::ast::Block) -> lisa_core::ast::Description {
    use lisa_core::ast::{Ident, OpItem, OperationDecl};
    lisa_core::ast::Description {
        resources: Vec::new(),
        pipelines: Vec::new(),
        operations: vec![OperationDecl {
            name: Ident::synthetic("doc"),
            alias: false,
            stage: None,
            items: vec![OpItem::Behavior(block.clone())],
            span: lisa_core::span::Span::synthetic(),
        }],
    }
}

/// Renders a syntax template with operand placeholders.
fn render_syntax(model: &Model, op: &Operation, syntax: &[SynElem]) -> String {
    let mut parts = Vec::new();
    for elem in syntax {
        match elem {
            SynElem::Literal(text) => {
                if !text.trim().is_empty() {
                    parts.push(text.trim().to_owned());
                }
            }
            SynElem::Group { group, .. } => {
                parts.push(format!("<{}>", op.groups[*group].name));
            }
            SynElem::Op { op: o, .. } => {
                parts.push(format!("<{}>", model.operation(*o).name));
            }
            SynElem::Label { label, format } => {
                let suffix = match format {
                    NumFormat::Signed => "s",
                    NumFormat::Unsigned => "u",
                    NumFormat::Hex => "x",
                };
                parts.push(format!("<{}:#{suffix}>", op.labels[*label]));
            }
        }
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_covers_all_models() {
        for (wb, name) in [
            (lisa_models::tinyrisc::workbench().unwrap(), "tinyrisc"),
            (lisa_models::accu16::workbench().unwrap(), "accu16"),
            (lisa_models::vliw62::workbench().unwrap(), "vliw62"),
        ] {
            let text = manual(wb.model(), name);
            assert!(text.contains("Instruction Set Manual"), "{name}");
            assert!(text.contains("## Resources"), "{name}");
            assert!(text.contains("## Instructions"), "{name}");
            let stats = ModelStats::of(wb.model());
            // Every instruction (and alias) has its own section.
            let sections = text.matches("\n### `").count();
            assert!(
                sections >= stats.instructions + stats.aliases,
                "{name}: {sections} sections for {} instructions",
                stats.instructions + stats.aliases
            );
        }
    }

    #[test]
    fn vliw_manual_shows_pipelines_and_variants() {
        let wb = lisa_models::vliw62::workbench().unwrap();
        let text = manual(wb.model(), "vliw62");
        assert!(text.contains("PG → PS → PW → PR → DP"));
        assert!(text.contains("Executes in* `execute_pipe.E1`"));
        assert!(text.contains("*(alias)*"));
        assert!(text.contains("```c"));
    }

    #[test]
    fn custom_sections_render_as_attributes() {
        let wb = lisa_models::vliw62::workbench().unwrap();
        let text = manual(wb.model(), "vliw62");
        assert!(
            text.contains("*power*: high - the 16x16 multiplier array dominates dynamic power"),
            "user-defined POWER sections appear in the manual"
        );
    }

    #[test]
    fn alias_sections_present_for_tinyrisc_mv() {
        let wb = lisa_models::tinyrisc::workbench().unwrap();
        let text = manual(wb.model(), "tinyrisc");
        assert!(text.contains("### `mv` *(alias)*"));
        assert!(text.contains("Semantics: `MOVE(Dest, Src)`"));
    }
}

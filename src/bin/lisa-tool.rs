//! `lisa-tool` — command-line front-end for the LISA toolchain.
//!
//! ```text
//! lisa-tool check  <model>                     parse + analyse, report stats/warnings
//! lisa-tool stats  <model>                     model complexity table (E1 metrics)
//! lisa-tool doc    <model> [-o FILE]           generate the ISA manual
//! lisa-tool asm    <model> <prog.s> [-o FILE]  assemble a program (listing to stdout)
//! lisa-tool disasm <model> <image.hex>         disassemble an image
//! lisa-tool run    <model> <prog.s> [options]  assemble + simulate to halt
//!     --mode interp|compiled    backend (default compiled)
//!     --max-steps N             step budget (default 1000000)
//!     --trace                   print the execution trace
//!     --dump RES[:N]            print a resource (first N elements) after the run
//! lisa-tool batch  [options]                   run the builtin models x kernels matrix
//!     --workers N               worker threads (default: available parallelism)
//!     --mode interp|compiled|both   backends to include (default both)
//! ```
//!
//! `<model>` is a `.lisa` file path or one of the builtins `@vliw62`,
//! `@accu16`, `@scalar2`, `@tinyrisc`. VLIW packing (`||` bars, p-bits) is enabled
//! automatically for `@vliw62`; use `--packet N` for custom VLIW models.

use std::fs;
use std::process::ExitCode;

use lisa::core::model::ModelStats;
use lisa::core::Model;
use lisa::sim::SimMode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("lisa-tool: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "check" => check(args.get(1).ok_or_else(usage)?),
        "stats" => stats(args.get(1).ok_or_else(usage)?),
        "doc" => doc(args.get(1).ok_or_else(usage)?, flag_value(args, "-o")),
        "asm" => asm(
            args.get(1).ok_or_else(usage)?,
            args.get(2).ok_or_else(usage)?,
            flag_value(args, "-o"),
            packet_size(args),
        ),
        "disasm" => disasm(
            args.get(1).ok_or_else(usage)?,
            args.get(2).ok_or_else(usage)?,
            packet_size(args),
        ),
        "run" => simulate(args),
        "batch" => batch(args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: lisa-tool <check|stats|doc|asm|disasm|run|batch> <model> [...]\n\
     model: a .lisa file or @vliw62 | @accu16 | @scalar2 | @tinyrisc\n\
     run options: --mode interp|compiled  --max-steps N  --trace  --dump RES[:N]\n\
     asm/disasm options: -o FILE  --packet N\n\
     batch options: --workers N  --mode interp|compiled|both"
        .to_owned()
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Loads a model source: builtin (`@name`) or file path. Returns the
/// source text plus default (program-memory, halt-flag, packet) settings.
fn load_source(spec: &str) -> Result<(String, &'static str, &'static str, Option<usize>), String> {
    match spec {
        "@vliw62" => Ok((
            lisa::models::vliw62::SOURCE.to_owned(),
            "pmem",
            "halt",
            Some(lisa::models::vliw62::FETCH_PACKET),
        )),
        "@accu16" => Ok((lisa::models::accu16::SOURCE.to_owned(), "prog_mem", "halt", None)),
        "@scalar2" => Ok((lisa::models::scalar2::SOURCE.to_owned(), "pmem", "halt", None)),
        "@tinyrisc" => Ok((lisa::models::tinyrisc::SOURCE.to_owned(), "pmem", "halt", None)),
        path => {
            let text =
                fs::read_to_string(path).map_err(|e| format!("cannot read model `{path}`: {e}"))?;
            Ok((text, "pmem", "halt", None))
        }
    }
}

fn build_model(spec: &str) -> Result<(Model, &'static str, &'static str, Option<usize>), String> {
    let (source, pmem, halt, packet) = load_source(spec)?;
    let model = Model::from_source(&source).map_err(|e| e.to_string())?;
    Ok((model, pmem, halt, packet))
}

fn packet_size(args: &[String]) -> Option<usize> {
    flag_value(args, "--packet").and_then(|v| v.parse().ok())
}

fn check(spec: &str) -> Result<(), String> {
    let (model, ..) = build_model(spec)?;
    println!("ok: {} operations, {} resources", model.operations().len(), model.resources().len());
    for warning in model.warnings() {
        println!("warning: {warning}");
    }
    if model.decode_roots().is_empty() {
        println!("note: no decode root — decoder/assembler generation will fail");
    }
    if model.main_op().is_none() {
        println!("note: no `main` operation — the simulator has no cycle driver");
    }
    Ok(())
}

fn stats(spec: &str) -> Result<(), String> {
    let (model, ..) = build_model(spec)?;
    println!("{}", ModelStats::of(&model));
    Ok(())
}

fn doc(spec: &str, out: Option<&str>) -> Result<(), String> {
    let (model, ..) = build_model(spec)?;
    let title = spec.trim_start_matches('@');
    let manual = lisa::docgen::manual(&model, title);
    match out {
        Some(path) => {
            fs::write(path, &manual).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("wrote {path} ({} lines)", manual.lines().count());
        }
        None => print!("{manual}"),
    }
    Ok(())
}

fn make_assembler<'m>(
    model: &'m Model,
    builtin_packet: Option<usize>,
    cli_packet: Option<usize>,
) -> lisa::asm::Assembler<'m> {
    match cli_packet.or(builtin_packet) {
        Some(n) => lisa::asm::Assembler::with_packet(model, n, 1),
        None => lisa::asm::Assembler::new(model),
    }
}

fn asm(
    spec: &str,
    program_path: &str,
    out: Option<&str>,
    cli_packet: Option<usize>,
) -> Result<(), String> {
    let (model, _, _, builtin_packet) = build_model(spec)?;
    let source = fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read `{program_path}`: {e}"))?;
    let assembler = make_assembler(&model, builtin_packet, cli_packet);
    let program = assembler.assemble(&source).map_err(|e| e.to_string())?;
    print!("{}", program.listing);
    if let Some(path) = out {
        let hex: String = program.words.iter().map(|w| format!("{w:08x}\n")).collect();
        fs::write(path, hex).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {} words to {path} (origin {:#x})", program.words.len(), program.origin);
    }
    Ok(())
}

fn disasm(spec: &str, image_path: &str, cli_packet: Option<usize>) -> Result<(), String> {
    let (model, _, _, builtin_packet) = build_model(spec)?;
    let text =
        fs::read_to_string(image_path).map_err(|e| format!("cannot read `{image_path}`: {e}"))?;
    let words: Vec<u128> = text
        .split_whitespace()
        .map(|t| u128::from_str_radix(t.trim_start_matches("0x"), 16))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("bad hex word: {e}"))?;
    let assembler = make_assembler(&model, builtin_packet, cli_packet);
    print!("{}", assembler.disassemble_listing(&words, 0));
    Ok(())
}

/// Runs every builtin kernel on every builtin model (the models×kernels
/// matrix) across the selected backends on a worker pool.
fn batch(args: &[String]) -> Result<(), String> {
    let workers: usize = match flag_value(args, "--workers") {
        Some(v) => v.parse().map_err(|e| format!("bad --workers: {e}"))?,
        None => std::thread::available_parallelism().map_or(1, usize::from),
    };
    let modes: &[SimMode] = match flag_value(args, "--mode") {
        Some("interp" | "interpretive") => &[SimMode::Interpretive],
        Some("compiled") => &[SimMode::Compiled],
        Some("both") | None => &[SimMode::Interpretive, SimMode::Compiled],
        Some(other) => return Err(format!("unknown mode `{other}`")),
    };

    let matrix = lisa::models::kernels::full_matrix().map_err(|e| e.to_string())?;
    let scenarios: Vec<lisa::exec::Scenario<'_>> = matrix
        .iter()
        .flat_map(|(wb, kernels)| {
            kernels
                .iter()
                .flat_map(move |kernel| modes.iter().map(move |&mode| wb.scenario(kernel, mode)))
        })
        .collect();

    let report = lisa::exec::BatchRunner::new(workers).run(&scenarios);
    print!("{}", report.table());
    if report.all_passed() {
        Ok(())
    } else {
        Err(format!("{} of {} jobs failed", report.failures().len(), report.jobs.len()))
    }
}

fn simulate(args: &[String]) -> Result<(), String> {
    let spec = args.get(1).ok_or_else(usage)?;
    let program_path = args.get(2).ok_or_else(usage)?;
    let (model, pmem_name, halt_name, builtin_packet) = build_model(spec)?;
    let source = fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read `{program_path}`: {e}"))?;
    let assembler = make_assembler(&model, builtin_packet, packet_size(args));
    let program = assembler.assemble(&source).map_err(|e| e.to_string())?;

    let mode = match flag_value(args, "--mode") {
        Some("interp" | "interpretive") => SimMode::Interpretive,
        Some("compiled") | None => SimMode::Compiled,
        Some(other) => return Err(format!("unknown mode `{other}`")),
    };
    let max_steps: u64 = flag_value(args, "--max-steps")
        .map(|v| v.parse().map_err(|e| format!("bad --max-steps: {e}")))
        .transpose()?
        .unwrap_or(1_000_000);

    let mut sim = lisa::sim::Simulator::new(&model, mode).map_err(|e| e.to_string())?;
    // Load honouring the program origin.
    let pmem = model
        .resource_by_name(pmem_name)
        .ok_or_else(|| format!("model has no `{pmem_name}` memory"))?
        .clone();
    for (i, &word) in program.words.iter().enumerate() {
        let addr = program.origin as i64 + i as i64;
        sim.state_mut()
            .write(&pmem, &[addr], lisa::bits::Bits::from_u128_wrapped(pmem.ty.width(), word))
            .map_err(|e| e.to_string())?;
    }
    if mode == SimMode::Compiled {
        sim.predecode_program_memory();
    }
    sim.set_trace(has_flag(args, "--trace"));

    let halt = model
        .resource_by_name(halt_name)
        .ok_or_else(|| format!("model has no `{halt_name}` flag"))?
        .clone();
    let t = std::time::Instant::now();
    let cycles = sim
        .run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, max_steps)
        .map_err(|e| e.to_string())?;
    let elapsed = t.elapsed();

    if has_flag(args, "--trace") {
        for line in sim.take_trace() {
            println!("{line}");
        }
    }
    println!("halted after {cycles} control steps in {elapsed:?} ({mode:?})");
    println!("stats: {}", sim.stats());

    if let Some(dump) = flag_value(args, "--dump") {
        let (name, count) = match dump.split_once(':') {
            Some((n, c)) => (n, c.parse::<usize>().map_err(|e| format!("bad --dump count: {e}"))?),
            None => (dump, 8),
        };
        let res =
            model.resource_by_name(name).ok_or_else(|| format!("unknown resource `{name}`"))?;
        if res.is_array() {
            let base = res.dims.first().map_or(0, |d| d.base()) as i64;
            print!("{name} =");
            for i in 0..count.min(res.element_count() as usize) {
                let v = sim.state().read_int(res, &[base + i as i64]).map_err(|e| e.to_string())?;
                print!(" {v}");
            }
            println!();
        } else {
            println!("{name} = {}", sim.state().read_int(res, &[]).map_err(|e| e.to_string())?);
        }
    }
    Ok(())
}

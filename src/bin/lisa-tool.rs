//! `lisa-tool` — command-line front-end for the LISA toolchain.
//!
//! ```text
//! lisa-tool check  <model>                     parse + analyse, report stats/warnings
//! lisa-tool stats  <model>                     model complexity table (E1 metrics)
//! lisa-tool doc    <model> [-o FILE]           generate the ISA manual
//! lisa-tool asm    <model> <prog.s> [-o FILE]  assemble a program (listing to stdout)
//! lisa-tool disasm <model> <image.hex>         disassemble an image
//! lisa-tool run    <model> <prog.s> [options]  assemble + simulate to halt
//!     --mode interp|compiled|ops    backend (default compiled)
//!     --max-steps N             step budget (default 1000000)
//!     --trace                   print the execution trace
//!     --dump RES[:N]            print a resource (first N elements) after the run
//!     --probe EXPR              arm probes (`watch dmem[0..16]; break 5; reg R`);
//!                               a matched `break` stops the run early
//!     --arch-profile FILE       collect + write the architectural profile
//!                               (.json for JSON, anything else for the report)
//! lisa-tool trace  <model> <prog.s> [options]  run + export the structured trace
//!     --out FILE                write to FILE instead of stdout
//!     --vcd                     emit a pipeline-timeline VCD instead of JSON lines
//!     --spans                   also print runtime spans (JSONL) after the run
//!     --probe EXPR              arm probes; hits appear in the event stream
//! lisa-tool profile <model> <prog.s> [options] run + print the execution profile
//! lisa-tool inspect <model> <prog.s> [options] run + print the architectural report
//!     --probe EXPR              arm probes; hit counts join the report
//!     --json                    print the profile as JSON instead of text
//! lisa-tool batch  [options]                   run the builtin models x kernels matrix
//!     --workers N               worker threads (default: available parallelism)
//!     --mode interp|compiled|ops|both|all   backends to include (default both)
//!     --profile                 collect + print the merged execution profile
//!     --spans FILE              write a Perfetto-loadable Chrome trace of the run
//! lisa-tool fuzz   [model] [options]           differential conformance fuzzing
//!     --model M                 model to fuzz (default: all builtins)
//!     --seed N                  master seed (default 0)
//!     --start N                 first iteration index (default 0)
//!     --iters N                 fresh programs per model (default 500)
//!     --corpus-dir DIR          replay reproducers first; persist new failures
//!                               (verified: unreadable or hash-mismatched files abort)
//!     --max-len N               longest synthesized prefix (default 24)
//!     --max-cycles N            cycle budget per run (default 2000)
//!     --self-check              only validate the harness via fault injection
//!     --remote ADDR             coordinate lisa-serve instances instead of fuzzing
//!                               locally (repeatable; disjoint seed ranges per instance)
//!     --timeout-ms N            per-instance request timeout with --remote (default 600000)
//!     --report FILE             write the fleet report as JSON (with --remote)
//!     --distill FILE            write the distilled covering seed set as JSON (local runs)
//! lisa-tool bench  [options]                   benchmark models x backends x kernels
//!     --quick                   reduced suite (1 kernel per model)
//!     --repeats N               timed runs per cell (default 3, --quick 2)
//!     --out DIR                 output directory (default: the repo's docs/)
//!     --baseline FILE           compare against a BENCH_*.json; fail on regression
//!     --threshold PCT           regression threshold in percent (default 10)
//! lisa-tool serve  [options]                   HTTP simulation service
//!     --addr A                  bind address (default 127.0.0.1:8080; port 0 = ephemeral)
//!     --workers N               connection worker threads (default 4)
//!     --queue N                 accept-queue capacity; full queue sheds 503 (default 64)
//!     --timeout-ms N            per-request deadline in milliseconds (default 5000)
//!     --once                    serve a single connection, then exit
//! ```
//!
//! `run`, `trace`, `batch`, `fuzz` and `bench` also accept `--metrics
//! FILE` to dump the run's metric registry in Prometheus text format.
//!
//! Exit codes: `0` success; `1` the tools ran but the work failed (batch
//! job failures, fuzz divergence, bench regression); `2` usage or
//! model/program errors.
//!
//! `<model>` is a `.lisa` file path or one of the builtins `@vliw62`,
//! `@accu16`, `@scalar2`, `@tinyrisc`. VLIW packing (`||` bars, p-bits) is enabled
//! automatically for `@vliw62`; use `--packet N` for custom VLIW models.

use std::fs;
use std::process::ExitCode;

use lisa::core::model::ModelStats;
use lisa::core::Model;
use lisa::metrics::Registry;
use lisa::sim::SimMode;

/// CLI failure, split by exit code: `Usage` exits 2 (bad invocation,
/// unreadable input, model errors), `Failed` exits 1 (the tools ran but
/// the work failed — job failures, divergences, perf regressions).
enum CliError {
    Usage(String),
    Failed(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Usage(msg)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Failed(msg)) => {
            eprintln!("lisa-tool: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("lisa-tool: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(usage().into());
    };
    match command.as_str() {
        "check" => Ok(check(args.get(1).ok_or_else(usage)?)?),
        "stats" => Ok(stats(args.get(1).ok_or_else(usage)?)?),
        "doc" => Ok(doc(args.get(1).ok_or_else(usage)?, flag_value(args, "-o"))?),
        "asm" => Ok(asm(
            args.get(1).ok_or_else(usage)?,
            args.get(2).ok_or_else(usage)?,
            flag_value(args, "-o"),
            packet_size(args),
        )?),
        "disasm" => Ok(disasm(
            args.get(1).ok_or_else(usage)?,
            args.get(2).ok_or_else(usage)?,
            packet_size(args),
        )?),
        "run" => Ok(simulate(args)?),
        "trace" => Ok(trace_cmd(args)?),
        "profile" => Ok(profile_cmd(args)?),
        "inspect" => Ok(inspect_cmd(args)?),
        "batch" => batch(args),
        "fuzz" => fuzz(args),
        "bench" => bench(args),
        "serve" => serve(args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

fn usage() -> String {
    "usage: lisa-tool <check|stats|doc|asm|disasm|run|trace|profile|inspect|batch|fuzz|bench|serve> <model> [...]\n\
     model: a .lisa file or @vliw62 | @accu16 | @scalar2 | @tinyrisc\n\
     run options: --mode interp|compiled|ops  --max-steps N  --trace  --dump RES[:N]\n\
                  --probe EXPR  --arch-profile FILE  --metrics FILE\n\
     trace options: --out FILE  --vcd  --spans  --probe EXPR  --metrics FILE  (plus run options)\n\
     profile options: same as run\n\
     inspect options: --probe EXPR  --json  (plus run options)\n\
     asm/disasm options: -o FILE  --packet N\n\
     batch options: --workers N  --mode interp|compiled|ops|both|all  --profile\n\
                    --metrics FILE\n\
                    --spans FILE\n\
     fuzz options: --model M|all  --seed N  --start N  --iters N  --corpus-dir DIR\n\
                   --max-len N  --max-cycles N  --self-check  --metrics FILE\n\
                   --remote ADDR (repeatable)  --timeout-ms N  --report FILE  --distill FILE\n\
     bench options: --quick  --repeats N  --out DIR  --baseline FILE  --threshold PCT\n\
                    --metrics FILE\n\
     serve options: --addr A  --workers N  --queue N  --timeout-ms N  --once\n\
     exit codes: 0 ok; 1 jobs failed / divergence / perf regression; 2 usage or model error"
        .to_owned()
}

/// Writes the registry's snapshot in Prometheus text format when the
/// command was given `--metrics FILE`.
fn dump_metrics(args: &[String], registry: &Registry) -> Result<(), String> {
    if let Some(path) = flag_value(args, "--metrics") {
        fs::write(path, registry.snapshot().to_prometheus())
            .map_err(|e| format!("cannot write metrics to `{path}`: {e}"))?;
        println!("metrics written to {path}");
    }
    Ok(())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Every value of a repeatable flag, in order (`--remote A --remote B`).
fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

/// Loads a model source: builtin (`@name`) or file path. Returns the
/// source text plus default (program-memory, halt-flag, packet) settings.
fn load_source(spec: &str) -> Result<(String, &'static str, &'static str, Option<usize>), String> {
    match spec {
        "@vliw62" => Ok((
            lisa::models::vliw62::SOURCE.to_owned(),
            "pmem",
            "halt",
            Some(lisa::models::vliw62::FETCH_PACKET),
        )),
        "@accu16" => Ok((lisa::models::accu16::SOURCE.to_owned(), "prog_mem", "halt", None)),
        "@scalar2" => Ok((lisa::models::scalar2::SOURCE.to_owned(), "pmem", "halt", None)),
        "@tinyrisc" => Ok((lisa::models::tinyrisc::SOURCE.to_owned(), "pmem", "halt", None)),
        path => {
            let text =
                fs::read_to_string(path).map_err(|e| format!("cannot read model `{path}`: {e}"))?;
            Ok((text, "pmem", "halt", None))
        }
    }
}

fn build_model(spec: &str) -> Result<(Model, &'static str, &'static str, Option<usize>), String> {
    let (source, pmem, halt, packet) = load_source(spec)?;
    let model = Model::from_source(&source).map_err(|e| e.to_string())?;
    Ok((model, pmem, halt, packet))
}

fn packet_size(args: &[String]) -> Option<usize> {
    flag_value(args, "--packet").and_then(|v| v.parse().ok())
}

fn check(spec: &str) -> Result<(), String> {
    let (model, ..) = build_model(spec)?;
    println!("ok: {} operations, {} resources", model.operations().len(), model.resources().len());
    for warning in model.warnings() {
        println!("warning: {warning}");
    }
    if model.decode_roots().is_empty() {
        println!("note: no decode root — decoder/assembler generation will fail");
    }
    if model.main_op().is_none() {
        println!("note: no `main` operation — the simulator has no cycle driver");
    }
    Ok(())
}

fn stats(spec: &str) -> Result<(), String> {
    let (model, ..) = build_model(spec)?;
    println!("{}", ModelStats::of(&model));
    Ok(())
}

fn doc(spec: &str, out: Option<&str>) -> Result<(), String> {
    let (model, ..) = build_model(spec)?;
    let title = spec.trim_start_matches('@');
    let manual = lisa::docgen::manual(&model, title);
    match out {
        Some(path) => {
            fs::write(path, &manual).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("wrote {path} ({} lines)", manual.lines().count());
        }
        None => print!("{manual}"),
    }
    Ok(())
}

fn make_assembler<'m>(
    model: &'m Model,
    builtin_packet: Option<usize>,
    cli_packet: Option<usize>,
) -> lisa::asm::Assembler<'m> {
    match cli_packet.or(builtin_packet) {
        Some(n) => lisa::asm::Assembler::with_packet(model, n, 1),
        None => lisa::asm::Assembler::new(model),
    }
}

fn asm(
    spec: &str,
    program_path: &str,
    out: Option<&str>,
    cli_packet: Option<usize>,
) -> Result<(), String> {
    let (model, _, _, builtin_packet) = build_model(spec)?;
    let source = fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read `{program_path}`: {e}"))?;
    let assembler = make_assembler(&model, builtin_packet, cli_packet);
    let program = assembler.assemble(&source).map_err(|e| e.to_string())?;
    print!("{}", program.listing);
    if let Some(path) = out {
        let hex: String = program.words.iter().map(|w| format!("{w:08x}\n")).collect();
        fs::write(path, hex).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {} words to {path} (origin {:#x})", program.words.len(), program.origin);
    }
    Ok(())
}

fn disasm(spec: &str, image_path: &str, cli_packet: Option<usize>) -> Result<(), String> {
    let (model, _, _, builtin_packet) = build_model(spec)?;
    let text =
        fs::read_to_string(image_path).map_err(|e| format!("cannot read `{image_path}`: {e}"))?;
    let words: Vec<u128> = text
        .split_whitespace()
        .map(|t| u128::from_str_radix(t.trim_start_matches("0x"), 16))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("bad hex word: {e}"))?;
    let assembler = make_assembler(&model, builtin_packet, cli_packet);
    print!("{}", assembler.disassemble_listing(&words, 0));
    Ok(())
}

/// Runs a program with structured tracing on and exports the events as
/// JSON lines (default) or a pipeline-timeline VCD (`--vcd`).
fn trace_cmd(args: &[String]) -> Result<(), String> {
    let run = load_run(args)?;
    let mode = sim_mode(args)?;
    let mut sim = boot_sim(&run, mode)?;
    sim.set_trace(true);
    arm_probes(args, &mut sim)?;

    // With --spans, hang the simulator's spans off a synthetic `run`
    // root so the exported tree is connected.
    let spans = has_flag(args, "--spans").then(|| {
        let recorder = std::sync::Arc::new(lisa::spans::SpanRecorder::new(1 << 16));
        recorder.set_enabled(true);
        let scope = lisa::spans::SpanScope::new(std::sync::Arc::clone(&recorder), 1);
        let root = scope.start(lisa::spans::SpanKind::Run);
        sim.set_spans(Some(scope.child(root.id())));
        (recorder, root)
    });
    let cycles = run_to_halt(&mut sim, &run, max_steps(args)?)?.cycles;
    let span_lines = spans.map(|(recorder, root)| {
        drop(root);
        lisa::spans::export::to_jsonl(&recorder.collect())
    });

    let events = sim.take_events();
    let names = sim.name_table();
    let text = if has_flag(args, "--vcd") {
        let mut buf = Vec::new();
        lisa::trace::write_vcd(&names, &events, &mut buf)
            .map_err(|e| format!("cannot render VCD: {e}"))?;
        String::from_utf8(buf).map_err(|e| format!("VCD is not UTF-8: {e}"))?
    } else {
        lisa::trace::events_to_jsonl(&names, &events)
    };
    match flag_value(args, "--out") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("wrote {} events over {cycles} control steps to {path}", events.len());
        }
        None => print!("{text}"),
    }
    if let Some(lines) = span_lines {
        print!("{lines}");
    }
    dump_run_metrics(args, &sim, mode)?;
    Ok(())
}

/// Runs a program with the architectural profile on and prints the
/// generated report: stage occupancy, operation/unit utilization,
/// memory heatmaps and probe hit counts.
fn inspect_cmd(args: &[String]) -> Result<(), String> {
    let run = load_run(args)?;
    let mode = sim_mode(args)?;
    let mut sim = boot_sim(&run, mode)?;
    arm_probes(args, &mut sim)?;
    sim.enable_arch_profile();
    let cycles = run_to_halt(&mut sim, &run, max_steps(args)?)?.cycles;
    let profile = sim.arch_profile().ok_or("architecture profiling produced no data")?;
    if has_flag(args, "--json") {
        println!("{}", profile.to_json());
    } else {
        // The report already carries the probe-hit section when probes
        // were armed.
        println!("ran {cycles} control steps ({mode:?})");
        print!("{}", profile.report());
    }
    dump_run_metrics(args, &sim, mode)?;
    Ok(())
}

/// Runs a program with profiling on and prints the execution profile
/// (per-operation histogram, hot PCs, per-stage pipeline table).
fn profile_cmd(args: &[String]) -> Result<(), String> {
    let run = load_run(args)?;
    let mode = sim_mode(args)?;
    let mut sim = boot_sim(&run, mode)?;
    sim.enable_profile();
    let cycles = run_to_halt(&mut sim, &run, max_steps(args)?)?.cycles;
    let profile = sim.take_profile().ok_or("profiling produced no data")?;
    println!("halted after {cycles} control steps ({mode:?})");
    print!("{}", profile.report());
    Ok(())
}

/// Runs every builtin kernel on every builtin model (the models×kernels
/// matrix) across the selected backends on a worker pool.
fn batch(args: &[String]) -> Result<(), CliError> {
    let workers: usize = match flag_value(args, "--workers") {
        Some(v) => v.parse().map_err(|e| format!("bad --workers: {e}"))?,
        None => std::thread::available_parallelism().map_or(1, usize::from),
    };
    let modes: &[SimMode] = match flag_value(args, "--mode") {
        Some("interp" | "interpretive") => &[SimMode::Interpretive],
        Some("compiled") => &[SimMode::Compiled],
        Some("ops") => &[SimMode::Ops],
        Some("both") | None => &[SimMode::Interpretive, SimMode::Compiled],
        Some("all") => &[SimMode::Interpretive, SimMode::Compiled, SimMode::Ops],
        Some(other) => {
            return Err(
                format!("unknown mode `{other}` (expected interp|compiled|ops|both|all)").into()
            )
        }
    };

    let profile = has_flag(args, "--profile");
    let matrix = lisa::models::kernels::full_matrix().map_err(|e| e.to_string())?;
    let scenarios: Vec<lisa::exec::Scenario<'_>> = matrix
        .iter()
        .flat_map(|(wb, kernels)| {
            kernels.iter().flat_map(move |kernel| {
                modes.iter().map(move |&mode| wb.scenario(kernel, mode).profiled(profile))
            })
        })
        .collect();

    let registry = Registry::new();
    let mut observer = lisa::exec::BatchObserver::new().with_metrics(&registry);
    // Live heartbeat with ETA when a human is watching; file/pipe
    // consumers (tests, CI logs) get the silent deterministic output.
    if std::io::IsTerminal::is_terminal(&std::io::stderr()) {
        observer = observer.with_heartbeat(std::time::Duration::from_secs(1), |p| {
            eprintln!("batch: {}", p.line());
        });
    }
    let spans = flag_value(args, "--spans").map(|path| {
        let recorder = std::sync::Arc::new(lisa::spans::SpanRecorder::new(1 << 18));
        recorder.set_enabled(true);
        (path.to_owned(), recorder)
    });
    if let Some((_, recorder)) = &spans {
        observer =
            observer.with_spans(lisa::spans::SpanScope::new(std::sync::Arc::clone(recorder), 1));
    }
    let report = lisa::exec::BatchRunner::new(workers).run_observed(&scenarios, &observer);
    print!("{}", report.table());
    if let Some((path, recorder)) = &spans {
        let collected = recorder.collect();
        let chrome = lisa::spans::export::to_chrome_trace(&collected);
        fs::write(path, chrome).map_err(|e| format!("cannot write spans to `{path}`: {e}"))?;
        println!(
            "{} span(s) written to {path} (Chrome trace; load at https://ui.perfetto.dev)",
            collected.len()
        );
    }
    for job in &report.jobs {
        if let Ok(r) = &job.result {
            lisa::sim::publish_stats(&registry, &r.stats, scenarios[job.index].mode.metric_label());
        }
    }
    dump_metrics(args, &registry)?;
    if let Some(merged) = report.merged_profile() {
        println!("\nmerged fleet profile:");
        print!("{}", merged.report());
    }
    if report.all_passed() {
        Ok(())
    } else {
        Err(CliError::Failed(format!(
            "{} of {} jobs failed",
            report.failures().len(),
            report.jobs.len()
        )))
    }
}

/// Benchmarks every builtin model × both backends × its kernel suite,
/// writes the schema-versioned `BENCH_<date>.json` trajectory, and (with
/// `--baseline`) gates on simulated-MIPS regressions.
fn bench(args: &[String]) -> Result<(), CliError> {
    use lisa_bench::trajectory::{self, BenchReport};

    let quick = has_flag(args, "--quick");
    let repeats: u32 = parse_flag(args, "--repeats", if quick { 2 } else { 3 })?;
    let threshold: f64 = parse_flag(args, "--threshold", 10.0)?;

    // Validate the baseline up front: an unreadable or malformed file is
    // a usage error, and it must not cost a benchmark run — or overwrite
    // today's `BENCH_<date>.json` — before being reported.
    let baseline = match flag_value(args, "--baseline") {
        Some(baseline_path) => {
            let text = fs::read_to_string(baseline_path)
                .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
            let parsed = BenchReport::from_json(&text)
                .map_err(|e| format!("bad baseline `{baseline_path}`: {e}"))?;
            Some((baseline_path, parsed))
        }
        None => None,
    };

    let registry = Registry::new();
    let report = trajectory::measure(quick, repeats, Some(&registry));
    print!("{}", report.table());

    let out_dir =
        flag_value(args, "--out").map_or_else(lisa_bench::docs_dir, std::path::PathBuf::from);
    let path = out_dir.join(format!("BENCH_{}.json", report.date));
    fs::write(&path, report.to_json())
        .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
    println!("wrote {}", path.display());
    dump_metrics(args, &registry)?;

    if let Some((baseline_path, baseline)) = baseline {
        let regressions = trajectory::compare(&report, &baseline, threshold);
        if !regressions.is_empty() {
            let mut msg = format!(
                "{} perf regression(s) vs {baseline_path} (threshold {threshold}%):",
                regressions.len()
            );
            for r in &regressions {
                msg.push_str(&format!("\n  {r}"));
            }
            return Err(CliError::Failed(msg));
        }
        println!("no regressions vs {baseline_path} (threshold {threshold}%)");
    }
    Ok(())
}

/// Boots the HTTP simulation service and blocks until shutdown (or, with
/// `--once`, until the first connection has been served).
fn serve(args: &[String]) -> Result<(), CliError> {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:8080").to_owned();
    let workers: usize = parse_flag(args, "--workers", 4)?;
    let queue: usize = parse_flag(args, "--queue", 64)?;
    let timeout_ms: u64 = parse_flag(args, "--timeout-ms", 5000)?;
    if workers == 0 {
        return Err("--workers must be at least 1".to_owned().into());
    }
    if queue == 0 {
        return Err("--queue must be at least 1".to_owned().into());
    }
    if timeout_ms == 0 {
        return Err("--timeout-ms must be at least 1".to_owned().into());
    }

    let config = lisa::serve::ServeConfig {
        addr: addr.clone(),
        workers,
        queue,
        timeout: std::time::Duration::from_millis(timeout_ms),
        once: has_flag(args, "--once"),
        limits: lisa::serve::http::Limits::default(),
    };
    let state = std::sync::Arc::new(lisa::serve::AppState::new());
    let server = lisa::serve::Server::bind(config, state)
        .map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    // Announce the resolved address (and flush) before accepting, so
    // scripts driving `--addr 127.0.0.1:0` can scrape the port.
    println!(
        "serving on http://{local} ({workers} workers, queue {queue}, timeout {timeout_ms}ms)"
    );
    std::io::Write::flush(&mut std::io::stdout()).ok();
    let summary =
        server.run().map_err(|e| CliError::Failed(format!("server error on {local}: {e}")))?;
    println!("serve done: accepted {} connection(s), shed {}", summary.accepted, summary.shed);
    Ok(())
}

/// Differential conformance fuzzing: replay the corpus, then synthesize
/// fresh programs and run the full oracle stack on each — locally, or
/// fanned out across lisa-serve instances with `--remote`.
fn fuzz(args: &[String]) -> Result<(), CliError> {
    let spec = flag_value(args, "--model")
        .or_else(|| args.get(1).map(String::as_str).filter(|a| !a.starts_with("--")))
        .unwrap_or("all");
    let config = lisa::conform::FuzzConfig {
        seed: parse_flag(args, "--seed", 0)?,
        start: parse_flag(args, "--start", 0)?,
        iters: parse_flag(args, "--iters", 500)?,
        max_len: parse_flag(args, "--max-len", 24)?,
        max_cycles: parse_flag(args, "--max-cycles", 2000)?,
        fault: None,
    };
    let corpus_dir = flag_value(args, "--corpus-dir").map(std::path::PathBuf::from);
    let self_check_only = has_flag(args, "--self-check");
    let remotes: Vec<String> =
        flag_values(args, "--remote").into_iter().map(str::to_owned).collect();

    let specs: Vec<&str> = if spec == "all" {
        vec!["@tinyrisc", "@scalar2", "@accu16", "@vliw62"]
    } else {
        vec![spec]
    };

    // An untrustworthy corpus aborts the whole run up front — exit 1
    // with the typed diagnostic, before any replay or fresh fuzzing.
    if let Some(dir) = &corpus_dir {
        lisa::conform::corpus::load_dir_verified(dir)
            .map_err(|e| CliError::Failed(e.to_string()))?;
    }

    if !remotes.is_empty() {
        return fuzz_fleet_cmd(args, &remotes, &specs, config, corpus_dir.as_deref());
    }

    let distill_path = flag_value(args, "--distill");
    let registry = Registry::new();
    let mut failed = Vec::new();
    let mut distilled = Vec::new();
    for spec in specs {
        let (name, wb) = fuzz_workbench(spec)?;
        match fuzz_one(
            &name,
            &wb,
            config,
            corpus_dir.as_deref(),
            self_check_only,
            distill_path.is_some(),
            &registry,
        ) {
            Ok(Some(d)) => distilled.push((name, d)),
            Ok(None) => {}
            Err(msg) => {
                eprintln!("{msg}");
                failed.push(name);
            }
        }
    }
    if let Some(path) = distill_path {
        let mut out = String::from("{");
        for (i, (name, d)) in distilled.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let indices: Vec<String> = d.indices.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "\"{name}\": {{\"seed\": {}, \"paths\": {}, \"indices\": [{}]}}",
                config.seed,
                d.coverage.len(),
                indices.join(", ")
            ));
        }
        out.push('}');
        fs::write(path, out)
            .map_err(|e| CliError::Usage(format!("cannot write distilled set to `{path}`: {e}")))?;
        println!("distilled seed set written to {path}");
    }
    dump_metrics(args, &registry)?;
    if failed.is_empty() {
        Ok(())
    } else {
        Err(CliError::Failed(format!("conformance failures in: {}", failed.join(", "))))
    }
}

/// The `--remote` coordinator: fan disjoint seed ranges across
/// lisa-serve instances, merge coverage, dedupe reproducers, and write
/// the fleet report.
fn fuzz_fleet_cmd(
    args: &[String],
    remotes: &[String],
    specs: &[&str],
    config: lisa::conform::FuzzConfig,
    corpus_dir: Option<&std::path::Path>,
) -> Result<(), CliError> {
    use lisa::serve::fleet::{fuzz_fleet, FleetConfig};

    let timeout = std::time::Duration::from_millis(parse_flag(args, "--timeout-ms", 600_000u64)?);
    let self_check = has_flag(args, "--self-check");
    let mut failed = Vec::new();
    let mut report_json = String::from("{");
    for (i, spec) in specs.iter().enumerate() {
        let name = spec.trim_start_matches('@').to_owned();
        let cfg = FleetConfig {
            model: name.clone(),
            seed: config.seed,
            seed_start: config.start,
            seed_count: config.iters,
            max_len: config.max_len as u64,
            max_cycles: config.max_cycles,
            self_check,
            timeout,
        };
        let report = fuzz_fleet(remotes, &cfg);
        println!("== {name} across {} instance(s) ==", remotes.len());
        print!("{}", report.table());
        if let Some(dir) = corpus_dir {
            for rep in &report.reproducers {
                match rep.save(dir) {
                    Ok(path) => println!("reproducer written to {}", path.display()),
                    Err(e) => eprintln!("could not write reproducer: {e}"),
                }
            }
        }
        if i > 0 {
            report_json.push_str(", ");
        }
        report_json.push_str(&format!("\"{name}\": {}", report.to_json()));
        // A self-check fleet run *passes* when every instance caught the
        // injected fault (each reports one divergence).
        let ok = if self_check {
            report.instances.iter().all(|inst| inst.error.is_none() && inst.found == 1)
        } else {
            report.passed()
        };
        if !ok {
            failed.push(name);
        }
    }
    report_json.push('}');
    if let Some(path) = flag_value(args, "--report") {
        fs::write(path, &report_json)
            .map_err(|e| CliError::Usage(format!("cannot write fleet report to `{path}`: {e}")))?;
        println!("fleet report written to {path}");
    }
    if failed.is_empty() {
        Ok(())
    } else {
        Err(CliError::Failed(format!("fleet conformance failures in: {}", failed.join(", "))))
    }
}

/// Builds the workbench to fuzz: a builtin by name or a `.lisa` file
/// (assumed to use the default `pmem`/`halt` resource names).
fn fuzz_workbench(spec: &str) -> Result<(String, lisa::models::Workbench), String> {
    let wb = match spec.trim_start_matches('@') {
        "vliw62" => lisa::models::vliw62::workbench(),
        "accu16" => lisa::models::accu16::workbench(),
        "scalar2" => lisa::models::scalar2::workbench(),
        "tinyrisc" => lisa::models::tinyrisc::workbench(),
        path => {
            let text =
                fs::read_to_string(path).map_err(|e| format!("cannot read model `{path}`: {e}"))?;
            let name = std::path::Path::new(path)
                .file_stem()
                .map_or_else(|| path.to_owned(), |s| s.to_string_lossy().into_owned());
            return Ok((
                name,
                lisa::models::Workbench::from_source(&text, "pmem", "halt")
                    .map_err(|e| e.to_string())?,
            ));
        }
    };
    Ok((spec.trim_start_matches('@').to_owned(), wb.map_err(|e| e.to_string())?))
}

/// Fuzzes one model: harness self-check, corpus replay, fresh programs.
/// Returns the distilled covering seed set when `distill` is requested
/// and the run was clean.
fn fuzz_one<'a>(
    name: &str,
    wb: &'a lisa::models::Workbench,
    config: lisa::conform::FuzzConfig,
    corpus_dir: Option<&std::path::Path>,
    self_check_only: bool,
    distill: bool,
    registry: &'a Registry,
) -> Result<Option<lisa::conform::Distilled>, String> {
    use lisa::conform::{corpus, Fuzzer};

    // Prove the harness can catch a real divergence before trusting a
    // clean fuzzing run.
    let caught = Fuzzer::self_check(wb, 4).map_err(|e| format!("{name}: self-check: {e}"))?;
    println!(
        "{name}: self-check ok — injected fault caught by {} oracle, shrunk to {} word(s)",
        caught.verdict.oracle,
        caught.shrunk.len()
    );
    if self_check_only {
        return Ok(None);
    }

    let fuzzer =
        Fuzzer::new(wb, config).map_err(|e| format!("{name}: {e}"))?.with_metrics(registry);

    if let Some(dir) = corpus_dir {
        // Integrity was verified up front in `fuzz`; a failure here
        // (e.g. a file changed underneath us) is still fatal.
        let entries = corpus::load_dir_verified(dir).map_err(|e| e.to_string())?;
        let mine: Vec<_> = entries.iter().filter(|(_, r)| r.model == name).collect();
        for (path, rep) in &mine {
            if let Err(verdict) = fuzzer.replay(rep) {
                return Err(format!(
                    "{name}: regression resurfaced replaying {}: {verdict}",
                    path.display()
                ));
            }
        }
        if !mine.is_empty() {
            println!("{name}: replayed {} corpus reproducer(s), all fixed", mine.len());
        }
    }

    let report = fuzzer.run();
    if let Some(failure) = &report.failure {
        let mut msg = format!(
            "{name}: DIVERGENCE at iteration {} (seed {}): {}\n  shrunk to {} word(s):",
            failure.iteration,
            config.seed,
            failure.verdict,
            failure.shrunk.len()
        );
        for &word in &failure.shrunk {
            let text = wb.disassemble(word).unwrap_or_else(|_| "<undecodable>".to_owned());
            msg.push_str(&format!("\n    {word:#x}  {text}"));
        }
        if let Some(dir) = corpus_dir {
            let rep = fuzzer.reproducer(name, failure);
            match rep.save(dir) {
                Ok(path) => msg.push_str(&format!("\n  reproducer written to {}", path.display())),
                Err(e) => msg.push_str(&format!("\n  could not write reproducer: {e}")),
            }
        }
        return Err(msg);
    }
    println!(
        "{name}: {} iterations ok (halted {}, budget {}, errored {}), \
         {} coding-tree path(s) covered — all oracles agree",
        report.iterations,
        report.halted,
        report.budget,
        report.errored,
        report.coverage.len()
    );
    if distill {
        let d = fuzzer.distill();
        println!(
            "{name}: distilled to {} seed(s) covering all {} path(s)",
            d.indices.len(),
            d.coverage.len()
        );
        return Ok(Some(d));
    }
    Ok(None)
}

/// Parses an integer flag with a default.
fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag_value(args, flag) {
        Some(v) => v.parse().map_err(|e| format!("bad {flag}: {e}")),
        None => Ok(default),
    }
}

/// A model + assembled program, ready to be booted into a simulator.
struct LoadedRun {
    model: Model,
    words: Vec<u128>,
    origin: u64,
    pmem_name: &'static str,
    halt_name: &'static str,
}

/// Parses `<model> <prog.s>` from positions 1/2 and assembles the program.
fn load_run(args: &[String]) -> Result<LoadedRun, String> {
    let spec = args.get(1).ok_or_else(usage)?;
    let program_path = args.get(2).ok_or_else(usage)?;
    let (model, pmem_name, halt_name, builtin_packet) = build_model(spec)?;
    let source = fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read `{program_path}`: {e}"))?;
    let assembler = make_assembler(&model, builtin_packet, packet_size(args));
    let program = assembler.assemble(&source).map_err(|e| e.to_string())?;
    Ok(LoadedRun { model, words: program.words, origin: program.origin, pmem_name, halt_name })
}

fn sim_mode(args: &[String]) -> Result<SimMode, String> {
    match flag_value(args, "--mode") {
        Some("interp" | "interpretive") => Ok(SimMode::Interpretive),
        Some("compiled") | None => Ok(SimMode::Compiled),
        Some("ops") => Ok(SimMode::Ops),
        Some(other) => Err(format!("unknown mode `{other}` (expected interp|compiled|ops)")),
    }
}

fn max_steps(args: &[String]) -> Result<u64, String> {
    flag_value(args, "--max-steps")
        .map(|v| v.parse().map_err(|e| format!("bad --max-steps: {e}")))
        .transpose()
        .map(|v| v.unwrap_or(1_000_000))
}

/// Builds a simulator from a loaded run: program memory filled
/// (honouring the program origin), pre-decoded in compiled/ops mode.
fn boot_sim<'m>(run: &'m LoadedRun, mode: SimMode) -> Result<lisa::sim::Simulator<'m>, String> {
    let mut sim = lisa::sim::Simulator::new(&run.model, mode).map_err(|e| e.to_string())?;
    let pmem = run
        .model
        .resource_by_name(run.pmem_name)
        .ok_or_else(|| format!("model has no `{}` memory", run.pmem_name))?
        .clone();
    for (i, &word) in run.words.iter().enumerate() {
        let addr = run.origin as i64 + i as i64;
        sim.state_mut()
            .write(&pmem, &[addr], lisa::bits::Bits::from_u128_wrapped(pmem.ty.width(), word))
            .map_err(|e| e.to_string())?;
    }
    if mode != SimMode::Interpretive {
        sim.predecode_program_memory();
    }
    Ok(sim)
}

/// Arms `--probe EXPR` probes on a simulator. Returns whether any were
/// armed.
fn arm_probes(args: &[String], sim: &mut lisa::sim::Simulator<'_>) -> Result<bool, String> {
    let Some(expr) = flag_value(args, "--probe") else {
        return Ok(false);
    };
    let spec = lisa::sim::ProbeSpec::parse(expr).map_err(|e| e.to_string())?;
    let set = spec.compile(sim.model()).map_err(|e| e.to_string())?;
    let armed = !set.is_empty();
    sim.set_probes(set);
    Ok(armed)
}

/// Prints the per-probe hit counts after a probed run.
fn print_probe_report(sim: &lisa::sim::Simulator<'_>) {
    println!("probe hits ({} total):", sim.probe_hits());
    for (label, hits) in sim.probe_report() {
        println!("  {label}: {hits}");
    }
}

/// Dumps simulator + probe metrics when `--metrics FILE` was given.
fn dump_run_metrics(
    args: &[String],
    sim: &lisa::sim::Simulator<'_>,
    mode: SimMode,
) -> Result<(), String> {
    if flag_value(args, "--metrics").is_none() {
        return Ok(());
    }
    let registry = Registry::new();
    lisa::sim::publish_stats(&registry, sim.stats(), mode.metric_label());
    if let Some(profile) = sim.arch_profile() {
        lisa::sim::publish_arch(&registry, &profile);
    }
    dump_metrics(args, &registry)
}

/// Runs until the model's halt flag goes nonzero, a `break` probe
/// matches, or the step budget runs out.
fn run_to_halt(
    sim: &mut lisa::sim::Simulator<'_>,
    run: &LoadedRun,
    max_steps: u64,
) -> Result<lisa::sim::RunOutcome, String> {
    let halt = run
        .model
        .resource_by_name(run.halt_name)
        .ok_or_else(|| format!("model has no `{}` flag", run.halt_name))?
        .clone();
    sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, max_steps)
        .map_err(|e| e.to_string())
}

fn simulate(args: &[String]) -> Result<(), String> {
    let run = load_run(args)?;
    let mode = sim_mode(args)?;
    let mut sim = boot_sim(&run, mode)?;
    sim.set_trace(has_flag(args, "--trace"));
    let probed = arm_probes(args, &mut sim)?;
    let arch_out = flag_value(args, "--arch-profile").map(str::to_owned);
    if arch_out.is_some() {
        sim.enable_arch_profile();
    }

    let t = std::time::Instant::now();
    let outcome = run_to_halt(&mut sim, &run, max_steps(args)?)?;
    let cycles = outcome.cycles;
    let elapsed = t.elapsed();

    if has_flag(args, "--trace") {
        for line in sim.take_trace() {
            println!("{line}");
        }
    }
    let mips = sim.stats().instructions_retired as f64 / elapsed.as_secs_f64().max(1e-9) / 1e6;
    match outcome.reason {
        lisa::sim::StopReason::Breakpoint { probe, pc } => {
            let report = sim.probe_report();
            let label = report
                .get(probe as usize)
                .map_or_else(|| format!("probe #{probe}"), |(label, _)| label.clone());
            println!(
                "stopped at breakpoint `{label}` (pc {pc}) after {cycles} control steps \
                 in {elapsed:?} ({mode:?})"
            );
        }
        lisa::sim::StopReason::Halted => println!(
            "halted after {cycles} control steps in {elapsed:?} ({mode:?}, {mips:.2} simulated MIPS)"
        ),
    }
    println!("stats: {}", sim.stats());
    if probed {
        print_probe_report(&sim);
    }
    if let Some(path) = arch_out {
        let profile = sim.arch_profile().ok_or("architecture profiling produced no data")?;
        let text = if path.ends_with(".json") { profile.to_json() } else { profile.report() };
        fs::write(&path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("architectural profile written to {path}");
    }
    dump_run_metrics(args, &sim, mode)?;

    if let Some(dump) = flag_value(args, "--dump") {
        let (name, count) = match dump.split_once(':') {
            Some((n, c)) => (n, c.parse::<usize>().map_err(|e| format!("bad --dump count: {e}"))?),
            None => (dump, 8),
        };
        let res =
            run.model.resource_by_name(name).ok_or_else(|| format!("unknown resource `{name}`"))?;
        if res.is_array() {
            let base = res.dims.first().map_or(0, |d| d.base()) as i64;
            print!("{name} =");
            for i in 0..count.min(res.element_count() as usize) {
                let v = sim.state().read_int(res, &[base + i as i64]).map_err(|e| e.to_string())?;
                print!(" {v}");
            }
            println!();
        } else {
            println!("{name} = {}", sim.state().read_int(res, &[]).map_err(|e| e.to_string())?);
        }
    }
    Ok(())
}

//! LISA — a reproduction of *"LISA: Machine Description Language for
//! Cycle-Accurate Models of Programmable DSP Architectures"* (Pees,
//! Hoffmann, Zivojnovic, Meyr — DAC 1999) as a Rust workspace.
//!
//! This facade crate re-exports the whole toolchain:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`bits`] | `lisa-bits` | bit-accurate values and `0b01x` patterns |
//! | [`core`] | `lisa-core` | the LISA language: lexer, parser, AST, model database |
//! | [`isa`]  | `lisa-isa`  | generated decoder/encoder/assembler/disassembler |
//! | [`sim`]  | `lisa-sim`  | interpretive + compiled cycle-accurate simulators |
//! | [`asm`]  | `lisa-asm`  | program-level assembler (labels, `\|\|` bars, directives) |
//! | [`docgen`] | `lisa-docgen` | automatic ISA manuals |
//! | [`models`] | `lisa-models` | vliw62 / accu16 / tinyrisc models + DSP kernels |
//! | [`exec`] | `lisa-exec` | parallel batch runner with checkpoint/restore forking |
//! | [`trace`] | `lisa-trace` | structured trace events, profiles, JSONL/VCD exporters |
//! | [`conform`] | `lisa-conform` | ISA-driven differential fuzzing, metamorphic oracles, shrinking |
//! | [`metrics`] | `lisa-metrics` | always-on runtime metrics: lock-free registry, Prometheus/JSON exposition |
//! | [`spans`] | `lisa-spans` | cross-layer runtime span tracing with Chrome-trace/JSONL export |
//! | [`serve`] | `lisa-serve` | dependency-free HTTP/1.1 simulation service: assemble/simulate/batch over the wire |
//!
//! # Quickstart
//!
//! ```
//! use lisa::models::tinyrisc;
//! use lisa::sim::SimMode;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wb = tinyrisc::workbench()?;
//! let program = lisa::asm::Assembler::new(wb.model()).assemble(
//!     "LDI R1, 20\nLDI R2, 22\nADD R3, R1, R2\nHLT\n",
//! )?;
//! let mut sim = wb.simulator(SimMode::Compiled)?;
//! // In compiled mode, loading pre-decodes program memory automatically.
//! sim.load_program("pmem", &program.words)?;
//! wb.run_to_halt(&mut sim, 100)?;
//! let r = wb.model().resource_by_name("R").expect("register file");
//! assert_eq!(sim.state().read_int(r, &[3])?, 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lisa_asm as asm;
pub use lisa_bits as bits;
pub use lisa_conform as conform;
pub use lisa_core as core;
pub use lisa_docgen as docgen;
pub use lisa_exec as exec;
pub use lisa_isa as isa;
pub use lisa_metrics as metrics;
pub use lisa_models as models;
pub use lisa_serve as serve;
pub use lisa_sim as sim;
pub use lisa_spans as spans;
pub use lisa_trace as trace;

//! Paper-conformance suite: each of the DAC 1999 paper's code examples
//! (Examples 1–6), as close to verbatim as the OCR'd text allows, must
//! parse — and where an example describes semantics, those semantics are
//! checked. Deviations from the printed text are noted inline.

use lisa::core::ast::{CodingElement, OpItem};
use lisa::core::model::ModelStats;
use lisa::core::{parser::parse, Model};

/// Example 1: declaration of resources. Verbatim except for the trailing
/// semicolons the paper's typesetting dropped.
#[test]
fn example_1_resource_declarations() {
    let desc = parse(
        r#"
        RESOURCE {
            PROGRAM_COUNTER int pc;
            CONTROL_REGISTER int instruction_register;
            REGISTER bit[48] accu;
            REGISTER bit carry;
            DATA_MEMORY int data_mem1[0x80000];
            DATA_MEMORY int data_mem2[4]([0x20000]);
            PROGRAM_MEMORY int prog_mem[0x100..0xffff];
        }
        "#,
    )
    .expect("Example 1 parses");
    assert_eq!(desc.resources.len(), 7);
    let accu = &desc.resources[2];
    assert_eq!(accu.ty.width(), 48);
    let banked = &desc.resources[5];
    assert_eq!(banked.dims.len(), 2, "data_mem2 is 4 banks of 0x20000");
    let prog = &desc.resources[6];
    assert_eq!(prog.dims[0].base(), 0x100, "address-range program memory");
    assert_eq!(prog.dims[0].len(), 0xff00);
}

/// Example 2: pipeline definition — the TMS320C6201's fetch and execute
/// pipelines, verbatim.
#[test]
fn example_2_pipeline_definitions() {
    let desc = parse(
        r#"
        RESOURCE {
            PIPELINE fetch_pipe = { PG; PS; PW; PR; DP };
            PIPELINE execute_pipe = { DC; E1; E2; E3; E4; E5 };
        }
        "#,
    )
    .expect("Example 2 parses");
    assert_eq!(desc.pipelines.len(), 2);
    let stages: Vec<&str> = desc.pipelines[0].stages.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(stages, ["PG", "PS", "PW", "PR", "DP"]);
    assert_eq!(desc.pipelines[1].stages.len(), 6);
}

/// Example 3: the root of the coding tree. The paper's member list is
/// `abs || add || and || …` (the OCR lost the or-bars).
#[test]
fn example_3_coding_tree_root() {
    let model = Model::from_source(
        r#"
        RESOURCE { CONTROL_REGISTER int instruction_register; }
        OPERATION abs  { CODING { 0b0000 } SYNTAX { "ABS" } }
        OPERATION add  { CODING { 0b0001 } SYNTAX { "ADD" } }
        OPERATION and  { CODING { 0b0010 } SYNTAX { "AND" } }
        OPERATION cmp  { CODING { 0b0011 } SYNTAX { "CMP" } }
        OPERATION ld   { CODING { 0b0100 } SYNTAX { "LD" } }
        OPERATION mul  { CODING { 0b0101 } SYNTAX { "MUL" } }
        OPERATION mv   { CODING { 0b0110 } SYNTAX { "MV" } }
        OPERATION norm { CODING { 0b0111 } SYNTAX { "NORM" } }
        OPERATION not  { CODING { 0b1000 } SYNTAX { "NOT" } }
        OPERATION or   { CODING { 0b1001 } SYNTAX { "OR" } }
        OPERATION sat  { CODING { 0b1010 } SYNTAX { "SAT" } }
        OPERATION sub  { CODING { 0b1011 } SYNTAX { "SUB" } }
        OPERATION st   { CODING { 0b1100 } SYNTAX { "ST" } }
        OPERATION xor  { CODING { 0b1101 } SYNTAX { "XOR" } }
        OPERATION decode {
            DECLARE {
                GROUP Instruction = {
                    abs || add || and || cmp || ld || mul || mv ||
                    norm || not || or || sat || sub || st || xor
                };
            }
            CODING { instruction_register == Instruction }
            SYNTAX { Instruction }
            BEHAVIOR { Instruction; }
        }
        "#,
    )
    .expect("Example 3 builds");
    let decode = model.operation_by_name("decode").expect("decode exists");
    assert_eq!(decode.groups[0].members.len(), 14, "the paper's 14 alternatives");
    assert!(decode.decode_root.is_some(), "root compares instruction_register");
    let stats = ModelStats::of(&model);
    assert_eq!(stats.instructions, 14);
}

/// Example 4: operation groups, labels and the translation rule — and the
/// paper's concrete claim: "the assembler statement ADD.D A4, A3, A15
/// would be translated into the binary code 0100 1111 0001 11000 0010 000"
/// (our field layout matches the example's structure: Dest Src2 Src1
/// opcode-bits; the exact printed bit string in the paper contains OCR
/// damage, so the checked property is encode∘decode identity plus field
/// placement).
#[test]
fn example_4_operation_groups_and_translation_rule() {
    let model = Model::from_source(
        r#"
        RESOURCE { CONTROL_REGISTER int ir; REGISTER int A[16]; }
        OPERATION register {
            DECLARE { LABEL index; }
            CODING { 0bx index:0bx[4] }
            SYNTAX { "A" index:#u }
            EXPRESSION { A[index] }
        }
        OPERATION add_d {
            DECLARE { GROUP Dest, Src1, Src2 = { register }; }
            CODING { Dest Src2 Src1 0b1000000 0b10000 }
            SYNTAX { "ADD" ".D" Src1 "," Src2 "," Dest }
            BEHAVIOR { Dest = Src1 + Src2; }
        }
        OPERATION decode {
            DECLARE { GROUP Instruction = { add_d }; }
            CODING { ir == Instruction }
            SYNTAX { Instruction }
            BEHAVIOR { Instruction; }
        }
        "#,
    )
    .expect("Example 4 builds");
    let decoder = lisa::isa::Decoder::new(&model).expect("decoder");
    let asm = lisa::isa::Assembler::new(&model, &decoder);

    // The paper's assembly statement.
    let decoded = asm.assemble_instruction("ADD .D A4, A3, A15").expect("assembles");
    let word = decoded.encode(&model).expect("encodes").to_u128();

    // Field placement: Dest(5) Src2(5) Src1(5) 0b1000000 0b10000.
    // Dest = A15 → index 15; Src2 = A3 → 3; Src1 = A4 → 4.
    assert_eq!(word & 0b11111, 0b10000, "trailing fixed bits");
    assert_eq!(word >> 5 & 0b1111111, 0b1000000, "opcode field");
    assert_eq!(word >> 12 & 0b1111, 4, "Src1 = A4 (label bits)");
    assert_eq!(word >> 17 & 0b1111, 3, "Src2 = A3");
    assert_eq!(word >> 22 & 0b1111, 15, "Dest = A15");

    // Round trip through the translation rule.
    let back = decoder.decode(word).expect("decodes");
    assert_eq!(asm.disassemble(&back), "ADD .D A4, A3, A15");
}

/// Example 4's semantics: "the assembly statement ADD.D A3, A4, A0 would
/// cause the following behavioral code to be executed during simulation:
/// A[0] = A[3] + A[4]".
#[test]
fn example_4_behavior_execution() {
    let model = Model::from_source(
        r#"
        RESOURCE { CONTROL_REGISTER int ir; REGISTER int A[16]; }
        OPERATION register {
            DECLARE { LABEL index; }
            CODING { 0bx index:0bx[4] }
            SYNTAX { "A" index:#u }
            EXPRESSION { A[index] }
        }
        OPERATION add_d {
            DECLARE { GROUP Dest, Src1, Src2 = { register }; }
            CODING { Dest Src2 Src1 0b1000000 0b10000 }
            SYNTAX { "ADD" ".D" Src1 "," Src2 "," Dest }
            BEHAVIOR { Dest = Src1 + Src2; }
        }
        OPERATION decode {
            DECLARE { GROUP Instruction = { add_d }; }
            CODING { ir == Instruction }
            SYNTAX { Instruction }
            BEHAVIOR { Instruction; }
        }
        "#,
    )
    .expect("builds");
    let decoder = lisa::isa::Decoder::new(&model).expect("decoder");
    let asm = lisa::isa::Assembler::new(&model, &decoder);
    let decoded = asm.assemble_instruction("ADD .D A3, A4, A0").expect("assembles");

    for mode in [lisa::sim::SimMode::Interpretive, lisa::sim::SimMode::Compiled] {
        let mut sim = lisa::sim::Simulator::new(&model, mode).expect("sim");
        let a = model.resource_by_name("A").unwrap().clone();
        sim.state_mut().write_int(&a, &[3], 30).unwrap();
        sim.state_mut().write_int(&a, &[4], 12).unwrap();
        sim.execute_decoded(&decoded).expect("executes");
        assert_eq!(sim.state().read_int(&a, &[0]).unwrap(), 42, "{mode:?}: A[0] = A[3] + A[4]");
    }
}

/// Example 5: activation of operations — parses verbatim (modulo the `;`
/// statement separators inside the braces that the OCR collapsed).
#[test]
fn example_5_activation_section_parses() {
    let desc = parse(
        r#"
        RESOURCE {
            CONTROL_REGISTER int dispatch_complete;
            CONTROL_REGISTER int multicycle_nop;
            PIPELINE fetch_pipe = { PG; PS; PW; PR; DP };
            PIPELINE execute_pipe = { DC; E1 };
        }
        OPERATION Prog_Address_Generate IN fetch_pipe.PG { BEHAVIOR { } }
        OPERATION Prog_Address_Send IN fetch_pipe.PS { BEHAVIOR { } }
        OPERATION Prog_Access_Ready_Wait IN fetch_pipe.PW { BEHAVIOR { } }
        OPERATION Prog_Fetch_Packet_Receive IN fetch_pipe.PR { BEHAVIOR { } }
        OPERATION Dispatch IN fetch_pipe.DP { BEHAVIOR { } }
        OPERATION main {
            ACTIVATION {
                if (dispatch_complete && !multicycle_nop) {
                    Prog_Address_Generate, Prog_Address_Send,
                    Prog_Access_Ready_Wait, Prog_Fetch_Packet_Receive,
                    Dispatch
                }
                if (multicycle_nop) {
                    fetch_pipe.DP.stall(), execute_pipe.DC.stall()
                }
                fetch_pipe.shift(), execute_pipe.shift()
            }
        }
        "#,
    )
    .expect("Example 5 parses");
    let main = desc.operations.last().expect("main");
    let OpItem::Activation(act) = &main.items[0] else { panic!("ACTIVATION") };
    assert_eq!(act.items.len(), 4, "two conditionals + two shifts");
}

/// Example 6: conditional operation structuring — parses and specialises,
/// and the compile-time selection avoids any run-time bit check (the
/// selected variant carries the guard).
#[test]
fn example_6_switch_case_structuring() {
    let model = Model::from_source(
        r#"
        RESOURCE { CONTROL_REGISTER int ir; REGISTER int A[16]; REGISTER int B[16]; }
        OPERATION side1 { CODING { 0b0 } SYNTAX { "1" } }
        OPERATION side2 { CODING { 0b1 } SYNTAX { "2" } }
        OPERATION register {
            DECLARE {
                GROUP Side = { side1 || side2 };
                LABEL index;
            }
            CODING { Side index:0bx[4] }
            SWITCH (Side) {
                CASE side1: {
                    SYNTAX { "A" index:#u }
                    EXPRESSION { A[index] }
                }
                CASE side2: {
                    SYNTAX { "B" index:#u }
                    EXPRESSION { B[index] }
                }
            }
        }
        OPERATION use_reg {
            DECLARE { GROUP Src = { register }; }
            CODING { 0b101 Src }
            SYNTAX { "USE" Src }
            BEHAVIOR { ir = Src; }
        }
        OPERATION decode {
            DECLARE { GROUP Instruction = { use_reg }; }
            CODING { ir == Instruction }
            SYNTAX { Instruction }
            BEHAVIOR { Instruction; }
        }
        "#,
    )
    .expect("Example 6 builds");
    let register = model.operation_by_name("register").expect("register");
    assert_eq!(register.variants.len(), 2, "one specialised variant per side");
    for variant in &register.variants {
        assert_eq!(variant.guard.len(), 1, "each variant is guard-selected");
        assert!(variant.expression.is_some());
        assert!(variant.syntax.is_some());
    }
    // Both variants share the same coding (declared outside the SWITCH).
    let widths: Vec<u32> =
        register.variants.iter().map(|v| v.coding.as_ref().expect("coding").width()).collect();
    assert_eq!(widths, vec![5, 5]);
}

/// The coding element `0bx[4]` used throughout the examples expands to
/// four don't-care bits.
#[test]
fn pattern_repetition_matches_paper_notation() {
    let desc = parse("OPERATION x { CODING { 0bx[4] 0b01[2] } }").expect("parses");
    let OpItem::Coding(coding) = &desc.operations[0].items[0] else { panic!() };
    let CodingElement::Pattern(p0, _) = &coding.elements[0] else { panic!() };
    assert_eq!(p0.to_string(), "0bxxxx");
    let CodingElement::Pattern(p1, _) = &coding.elements[1] else { panic!() };
    assert_eq!(p1.to_string(), "0b0101");
}

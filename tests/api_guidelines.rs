//! API-guideline conformance checks: public types are Send/Sync where
//! expected, implement the common traits, and errors satisfy the
//! `Error + Send + Sync + 'static` bound callers need.

use lisa::bits::{BitPattern, Bits, BitsError};
use lisa::core::model::{Model, ModelError, ModelStats};
use lisa::core::{Description, LisaError, ParseError};
use lisa::isa::{Decoded, IsaError};
use lisa::sim::{SimError, SimStats};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
fn assert_clone_debug<T: Clone + std::fmt::Debug>() {}

#[test]
fn value_types_are_send_sync() {
    assert_send_sync::<Bits>();
    assert_send_sync::<BitPattern>();
    assert_send_sync::<Description>();
    assert_send_sync::<Model>();
    assert_send_sync::<Decoded>();
    assert_send_sync::<SimStats>();
    assert_send_sync::<ModelStats>();
    assert_send_sync::<lisa::asm::Program>();
    // The simulator itself is Send (single-threaded use, movable across
    // threads — e.g. one simulator per benchmark worker).
    fn assert_send<T: Send>() {}
    assert_send::<lisa::sim::Simulator<'static>>();
}

#[test]
fn error_types_satisfy_the_standard_bounds() {
    assert_error::<BitsError>();
    assert_error::<ParseError>();
    assert_error::<ModelError>();
    assert_error::<LisaError>();
    assert_error::<IsaError>();
    assert_error::<SimError>();
    assert_error::<lisa::asm::AsmError>();
    assert_send_sync::<lisa::models::WorkbenchError>();
}

#[test]
fn data_types_are_clone_and_debug() {
    assert_clone_debug::<Bits>();
    assert_clone_debug::<BitPattern>();
    assert_clone_debug::<Description>();
    assert_clone_debug::<Model>();
    assert_clone_debug::<Decoded>();
    assert_clone_debug::<SimStats>();
    assert_clone_debug::<ModelStats>();
}

#[test]
fn bits_implements_numeric_formatting() {
    let v = Bits::from_u128_wrapped(16, 0xBEEF);
    assert_eq!(format!("{v:x}"), "beef");
    assert_eq!(format!("{v:X}"), "BEEF");
    assert_eq!(format!("{v:o}"), "137357");
    assert_eq!(format!("{v:b}"), "1011111011101111");
    assert_eq!(v.to_string(), "16'hbeef");
}

#[test]
fn debug_representations_are_not_empty() {
    let model = Model::from_source(
        "RESOURCE { PROGRAM_COUNTER int pc; } OPERATION main { BEHAVIOR { pc = pc + 1; } }",
    )
    .unwrap();
    let sim = lisa::sim::Simulator::new(&model, lisa::sim::SimMode::Compiled).unwrap();
    let dbg = format!("{sim:?}");
    assert!(dbg.contains("Simulator"), "{dbg}");
    assert!(dbg.contains("mode"), "{dbg}");
    assert!(!format!("{:?}", Bits::zero(8)).is_empty());
    assert!(!format!("{:?}", BitPattern::any(4)).is_empty());
}

//! Tier-1 conformance replay: every reproducer in `tests/corpus/` is
//! run through the full lisa-conform oracle stack on every `cargo
//! test`. A reproducer that fires again means a fixed divergence has
//! resurfaced — the corpus is the permanent regression suite that
//! fresh fuzzing (`lisa-tool fuzz`) grows over time.

use std::collections::BTreeMap;
use std::path::Path;

use lisa::conform::corpus::load_dir;
use lisa::conform::{FuzzConfig, Fuzzer};
use lisa::models::Workbench;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus"))
}

fn workbench(model: &str) -> Workbench {
    match model {
        "tinyrisc" => lisa::models::tinyrisc::workbench(),
        "scalar2" => lisa::models::scalar2::workbench(),
        "accu16" => lisa::models::accu16::workbench(),
        "vliw62" => lisa::models::vliw62::workbench(),
        other => panic!("corpus names unknown model `{other}`"),
    }
    .unwrap()
}

#[test]
fn the_corpus_is_not_empty() {
    let entries = load_dir(corpus_dir()).unwrap();
    assert!(
        entries.len() >= 5,
        "tests/corpus/ should ship seeded reproducers, found {}",
        entries.len()
    );
}

#[test]
fn every_corpus_entry_replays_clean() {
    let entries = load_dir(corpus_dir()).unwrap();
    let mut fuzzers: BTreeMap<String, (Workbench, FuzzConfig)> = BTreeMap::new();
    for (path, rep) in &entries {
        let (wb, config) = fuzzers
            .entry(rep.model.clone())
            .or_insert_with(|| (workbench(&rep.model), FuzzConfig::default()));
        let fuzzer = Fuzzer::new(wb, *config).unwrap();
        if let Err(verdict) = fuzzer.replay(rep) {
            panic!(
                "{}: regression resurfaced — {} oracle: {}",
                path.display(),
                verdict.oracle.label(),
                verdict.detail
            );
        }
    }
}

#[test]
fn corpus_file_names_are_content_addressed() {
    for (path, rep) in load_dir(corpus_dir()).unwrap() {
        let expect = rep.file_name();
        let actual = path.file_name().unwrap().to_string_lossy();
        assert_eq!(
            actual,
            expect,
            "{}: file name does not match its content hash (was it hand-edited?)",
            path.display()
        );
    }
}

#[test]
fn every_model_has_at_least_one_corpus_entry() {
    let entries = load_dir(corpus_dir()).unwrap();
    for model in ["tinyrisc", "scalar2", "accu16", "vliw62"] {
        assert!(entries.iter().any(|(_, rep)| rep.model == model), "no corpus entry for {model}");
    }
}

//! Behavior tests for the extended vliw62 instructions (division step,
//! bit detection, SIMD halfword operations, address scaling, register
//! branches and register-offset memory), in both simulation backends.

use lisa::models::vliw62::{self, assemble_packets};
use lisa::models::Workbench;
use lisa::sim::{SimMode, Simulator};

fn run_both<'m>(wb: &'m Workbench, packets: &[&[&str]]) -> Vec<Simulator<'m>> {
    let (words, _) = assemble_packets(wb, packets).expect("assembles");
    let mut sims = Vec::new();
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let mut sim = wb.simulator(mode).expect("sim");
        sim.load_program("pmem", &words).unwrap();
        wb.run_to_halt(&mut sim, 5_000).expect("halts");
        sims.push(sim);
    }
    assert_eq!(sims[0].state(), sims[1].state(), "backends diverged");
    sims
}

fn a_reg(sim: &Simulator<'_>, wb: &Workbench, i: i64) -> i64 {
    sim.state().read_int(wb.model().resource_by_name("A").unwrap(), &[i]).unwrap()
}

#[test]
fn subc_implements_the_division_step() {
    let wb = vliw62::workbench().expect("builds");
    // 32 SUBC steps divide A2 by A3: 100 / 7 = 14 remainder 2.
    // Numerator pre-shifted into position: standard C62x division idiom is
    // iterative; here verify one step's arithmetic directly.
    let sims = run_both(
        &wb,
        &[
            &["MVK A2, 100"],
            &["MVK A3, 60"],
            &["SUBC A4, A2, A3"], // 100 >= 60 → ((100-60)<<1)+1 = 81
            &["SUBC A5, A3, A2"], // 60 < 100 → 60<<1 = 120
            &["HALT"],
        ],
    );
    assert_eq!(a_reg(&sims[0], &wb, 4), 81);
    assert_eq!(a_reg(&sims[0], &wb, 5), 120);
}

#[test]
fn lmbd_finds_the_leftmost_bit() {
    let wb = vliw62::workbench().expect("builds");
    let sims = run_both(
        &wb,
        &[
            &["MVK A2, 1"], // search for a 1 bit
            &["MVK A3, 0"], // search for a 0 bit
            &["MVK A4, 0x0F00"],
            &["ZERO A5"],
            &["LMBD A6, A2, A4"], // leftmost 1 of 0x0F00 is bit 11 → 20
            &["LMBD A7, A2, A5"], // no 1 bit → 32
            &["LMBD A8, A3, A4"], // leftmost 0 of 0x0F00 is bit 31 → 0
            &["HALT"],
        ],
    );
    assert_eq!(a_reg(&sims[0], &wb, 6), 20);
    assert_eq!(a_reg(&sims[0], &wb, 7), 32);
    assert_eq!(a_reg(&sims[0], &wb, 8), 0);
}

#[test]
fn sshl_saturates_on_overflow() {
    let wb = vliw62::workbench().expect("builds");
    let sims = run_both(
        &wb,
        &[
            &["MVK A2, 0x4000"],
            &["MVKH A2, 0x4000"], // A2 = 0x40004000
            &["SSHL A3, A2, 1"],  // overflows → 0x7FFFFFFF
            &["MVK A4, 3"],
            &["SSHL A5, A4, 2"], // in range → 12
            &["HALT"],
        ],
    );
    assert_eq!(a_reg(&sims[0], &wb, 3), i64::from(i32::MAX));
    assert_eq!(a_reg(&sims[0], &wb, 5), 12);
}

#[test]
fn simd_compares_and_minmax() {
    let wb = vliw62::workbench().expect("builds");
    let sims = run_both(
        &wb,
        &[
            &["MVK A2, 5"],
            &["MVKH A2, 0x1"], // A2 = {hi: 1, lo: 5}
            &["MVK A3, 5"],
            &["MVKH A3, 0x2"],      // A3 = {hi: 2, lo: 5}
            &["CMPEQ2 A4, A2, A3"], // lo equal (bit0), hi differ → 0b01
            &["CMPGT2 A5, A3, A2"], // lo not >, hi 2>1 → 0b10
            &["MAX2 A6, A2, A3"],   // {2, 5}
            &["MIN2 A7, A2, A3"],   // {1, 5}
            &["HALT"],
        ],
    );
    assert_eq!(a_reg(&sims[0], &wb, 4), 0b01);
    assert_eq!(a_reg(&sims[0], &wb, 5), 0b10);
    assert_eq!(a_reg(&sims[0], &wb, 6) as u32, 0x0002_0005);
    assert_eq!(a_reg(&sims[0], &wb, 7) as u32, 0x0001_0005);
}

#[test]
fn mixed_sign_multiplies() {
    let wb = vliw62::workbench().expect("builds");
    let sims = run_both(
        &wb,
        &[
            &["MVK A2, -2"], // low half 0xFFFE
            &["MVK A3, 3"],
            &["MPYSU A4, A2, A3"], // -2 * 3 = -6
            &["MPYUS A5, A2, A3"], // 0xFFFE * 3 = 196602
            &["NOP 2"],
            &["HALT"],
        ],
    );
    assert_eq!(a_reg(&sims[0], &wb, 4), -6);
    assert_eq!(a_reg(&sims[0], &wb, 5), 196_602);
}

#[test]
fn address_scaling_adds_and_subs() {
    let wb = vliw62::workbench().expect("builds");
    let sims = run_both(
        &wb,
        &[
            &["MVK A2, 1000"],
            &["MVK A3, 5"],
            &["ADDAB A4, A2, A3"], // 1005
            &["ADDAH A5, A2, A3"], // 1010
            &["ADDAW A6, A2, A3"], // 1020
            &["SUBAB A7, A2, A3"], // 995
            &["SUBAH A8, A2, A3"], // 990
            &["SUBAW A9, A2, A3"], // 980
            &["HALT"],
        ],
    );
    assert_eq!(
        (4..=9).map(|i| a_reg(&sims[0], &wb, i)).collect::<Vec<_>>(),
        vec![1005, 1010, 1020, 995, 990, 980]
    );
}

#[test]
fn register_offset_memory_round_trips() {
    let wb = vliw62::workbench().expect("builds");
    let sims = run_both(
        &wb,
        &[
            &["MVK A10, 256"],
            &["MVK A11, 3"], // register offset (scaled by 4)
            &["MVK A2, -777"],
            &["STW A2, *+ A10[A11]"],
            &["LDW *+ A10[A11], A3"],
            &["NOP 5"],
            &["HALT"],
        ],
    );
    assert_eq!(a_reg(&sims[0], &wb, 3), -777);
    // Verify the byte address actually used: 256 + 3*4 = 268.
    let dmem = wb.model().resource_by_name("dmem").unwrap();
    let lo = sims[0].state().read_int(dmem, &[268]).unwrap() & 0xFF;
    assert_eq!(lo, (-777i64) & 0xFF);
}

#[test]
fn register_branch_jumps_to_computed_target() {
    let wb = vliw62::workbench().expect("builds");
    let packets: Vec<&[&str]> = vec![
        &["MVK A2, 9"], // target address, computed in a register
        &["B A2"],      // register branch
        &["NOP 1"],
        &["NOP 1"],
        &["NOP 1"],
        &["NOP 1"],
        &["NOP 1"],     // 5 delay slots
        &["MVK A3, 1"], // annulled fall-through
        &["MVK A4, 1"], // annulled
        &["MVK A5, 1"], // word 9: the target
        &["HALT"],
    ];
    let sims = run_both(&wb, &packets);
    assert_eq!(a_reg(&sims[0], &wb, 3), 0, "fall-through annulled");
    assert_eq!(a_reg(&sims[0], &wb, 5), 1, "target executed");
}

#[test]
fn mvkl_alias_matches_mvk() {
    let wb = vliw62::workbench().expect("builds");
    let mvkl = wb.assemble(&["MVKL A1, 77"]).unwrap()[0];
    let mvk = wb.assemble(&["MVK A1, 77"]).unwrap()[0];
    assert_eq!(mvkl, mvk);
    assert_eq!(wb.disassemble(mvkl).unwrap(), "MVK A1, 77");
}

#[test]
fn extended_isa_raises_model_statistics() {
    let wb = vliw62::workbench().expect("builds");
    let stats = lisa::core::model::ModelStats::of(wb.model());
    assert!(stats.instructions >= 72, "{stats}");
    assert!(stats.aliases >= 3, "{stats}");
    assert!(stats.operations >= 100, "{stats}");
}

//! Experiment E4 — differential verification, the stand-in for the
//! paper's cross-check against TI's `sim62x` (§4.1: "The realized
//! simulator was successfully verified against the simulator sim62x from
//! Texas Instruments based on a number of typical DSP applications").
//!
//! The two independently-implemented backends (interpretive AST walking
//! vs compiled slot-resolved execution) must agree bit-by-bit and
//! cycle-by-cycle on every kernel, and both must match golden results
//! computed in plain Rust.

use lisa::models::{accu16, kernels, vliw62};
use lisa::sim::SimMode;

#[test]
fn vliw_suite_agrees_cycle_by_cycle() {
    let wb = vliw62::workbench().expect("builds");
    for kernel in kernels::vliw_suite() {
        let mut interp =
            kernels::load_kernel(&wb, &kernel, SimMode::Interpretive).expect("interp loads");
        let mut compiled =
            kernels::load_kernel(&wb, &kernel, SimMode::Compiled).expect("compiled loads");
        let halt = wb.model().resource_by_name("halt").unwrap().clone();
        let mut cycle = 0u64;
        loop {
            interp.step().expect("interp step");
            compiled.step().expect("compiled step");
            cycle += 1;
            assert_eq!(
                interp.state(),
                compiled.state(),
                "kernel {} diverged at cycle {cycle}",
                kernel.name
            );
            if interp.state().read_int(&halt, &[]).unwrap() != 0 {
                break;
            }
            assert!(cycle < kernel.max_steps, "kernel {} never halts", kernel.name);
        }
        kernels::verify_kernel(&wb, &kernel, &interp);
        kernels::verify_kernel(&wb, &kernel, &compiled);
    }
}

#[test]
fn accu_suite_agrees_cycle_by_cycle() {
    let wb = accu16::workbench().expect("builds");
    for kernel in kernels::accu_suite() {
        let mut interp =
            kernels::load_kernel(&wb, &kernel, SimMode::Interpretive).expect("interp loads");
        let mut compiled =
            kernels::load_kernel(&wb, &kernel, SimMode::Compiled).expect("compiled loads");
        let halt = wb.model().resource_by_name("halt").unwrap().clone();
        let mut cycle = 0u64;
        loop {
            interp.step().expect("interp step");
            compiled.step().expect("compiled step");
            cycle += 1;
            assert_eq!(
                interp.state(),
                compiled.state(),
                "kernel {} diverged at cycle {cycle}",
                kernel.name
            );
            if interp.state().read_int(&halt, &[]).unwrap() != 0 {
                break;
            }
            assert!(cycle < kernel.max_steps, "kernel {} never halts", kernel.name);
        }
        kernels::verify_kernel(&wb, &kernel, &interp);
        kernels::verify_kernel(&wb, &kernel, &compiled);
    }
}

#[test]
fn statistics_agree_between_backends() {
    let wb = vliw62::workbench().expect("builds");
    let kernel = kernels::vliw_dot_product(16);
    let (interp, c1) = kernels::run_kernel(&wb, &kernel, SimMode::Interpretive).unwrap();
    let (compiled, c2) = kernels::run_kernel(&wb, &kernel, SimMode::Compiled).unwrap();
    assert_eq!(c1, c2);
    let (si, sc) = (interp.stats(), compiled.stats());
    assert_eq!(si.cycles, sc.cycles);
    assert_eq!(si.executed_ops, sc.executed_ops);
    assert_eq!(si.decodes, sc.decodes);
    assert_eq!(si.activations, sc.activations);
    assert_eq!(si.stalls, sc.stalls);
    assert_eq!(si.flushes, sc.flushes);
    // The only permitted difference: the compiled backend's decode cache.
    assert_eq!(si.decode_cache_hits, 0);
    assert_eq!(sc.decode_cache_hits, sc.decodes);
}

#[test]
fn random_programs_agree_between_backends() {
    // Generate random (but valid) straight-line programs over the safe
    // arithmetic subset and compare final state across backends.
    let wb = vliw62::workbench().expect("builds");
    let mnemonics = ["ADD .L", "SUB .L", "AND .L", "OR .L", "XOR .L", "SADD", "SSUB"];
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for round in 0..8 {
        let mut packets: Vec<Vec<String>> = Vec::new();
        // Seed registers (skip A1/B0/B1/B2, which are predicate registers).
        for r in 2..8 {
            packets.push(vec![format!("MVK A{r}, {}", (next() % 2000) as i64 - 1000)]);
            packets.push(vec![format!("MVK B{r}, {}", (next() % 2000) as i64 - 1000)]);
        }
        for _ in 0..24 {
            let m = mnemonics[(next() % mnemonics.len() as u64) as usize];
            let side = |v: u64| if v.is_multiple_of(2) { "A" } else { "B" };
            let d = 2 + next() % 12;
            let s1 = 2 + next() % 12;
            let s2 = 2 + next() % 12;
            packets.push(vec![format!(
                "{m} {}{d}, {}{s1}, {}{s2}",
                side(next()),
                side(next()),
                side(next())
            )]);
        }
        packets.push(vec!["HALT".to_owned()]);
        let packet_strs: Vec<Vec<&str>> =
            packets.iter().map(|p| p.iter().map(String::as_str).collect()).collect();
        let packet_refs: Vec<&[&str]> = packet_strs.iter().map(|p| p.as_slice()).collect();
        let (words, _) = vliw62::assemble_packets(&wb, &packet_refs).expect("assembles");

        let mut sims = Vec::new();
        for mode in [SimMode::Interpretive, SimMode::Compiled] {
            let mut sim = wb.simulator(mode).expect("sim");
            sim.load_program("pmem", &words).unwrap();
            let halt = wb.model().resource_by_name("halt").unwrap().clone();
            sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, 10_000).expect("halts");
            sims.push(sim);
        }
        assert_eq!(sims[0].state(), sims[1].state(), "random program round {round} diverged");
    }
}

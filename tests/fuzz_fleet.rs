//! Fleet-scale conformance: two real lisa-serve instances on loopback,
//! driven by the fleet coordinator. The key property is losslessness —
//! a fleet splitting one seed range across N instances must observe
//! exactly the coverage a single instance observes over the whole
//! range, with zero divergences, and identical reproducers must
//! deduplicate by content hash.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use lisa::conform::{FuzzConfig, Fuzzer};
use lisa::serve::{fuzz_fleet, AppState, FleetConfig, ServeConfig, Server, ServerHandle};

fn boot() -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue: 16,
        timeout: Duration::from_secs(120),
        once: false,
        ..ServeConfig::default()
    };
    let server = Server::bind(config, Arc::new(AppState::new())).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle, join)
}

#[test]
fn two_instance_fleet_matches_a_single_whole_range_run() {
    let (addr_a, handle_a, join_a) = boot();
    let (addr_b, handle_b, join_b) = boot();
    let remotes = vec![addr_a.to_string(), addr_b.to_string()];

    let cfg = FleetConfig {
        model: "tinyrisc".to_owned(),
        seed: 7,
        seed_start: 0,
        seed_count: 40,
        max_len: 16,
        max_cycles: 2000,
        self_check: false,
        timeout: Duration::from_secs(120),
    };
    let report = fuzz_fleet(&remotes, &cfg);

    // Both instances answered, the ranges are disjoint halves, and no
    // oracle fired anywhere in the fleet.
    assert_eq!(report.instances.len(), 2, "{}", report.table());
    for inst in &report.instances {
        assert!(inst.error.is_none(), "{}", report.table());
        assert_eq!(inst.seed_count, 20);
        assert_eq!(inst.iterations, 20);
    }
    assert_eq!(report.instances[0].seed_start, 0);
    assert_eq!(report.instances[1].seed_start, 20);
    assert_eq!(report.iterations(), 40);
    assert_eq!(report.divergences(), 0);
    assert!(report.passed());
    assert!(report.reproducers.is_empty());

    // Losslessness: the merged fleet coverage equals what one local
    // fuzzer observes over the identical whole range.
    let wb = lisa::models::tinyrisc::workbench().expect("tinyrisc workbench");
    let solo = Fuzzer::new(
        &wb,
        FuzzConfig { seed: 7, start: 0, iters: 40, max_len: 16, max_cycles: 2000, fault: None },
    )
    .expect("fuzzer")
    .run();
    assert!(solo.failure.is_none());
    assert!(!solo.coverage.is_empty());
    assert_eq!(
        report.coverage, solo.coverage,
        "fleet coverage must equal single-instance coverage over the same range"
    );

    handle_a.shutdown();
    handle_b.shutdown();
    join_a.join().expect("server a");
    join_b.join().expect("server b");
}

#[test]
fn self_check_fleet_dedupes_identical_reproducers_to_one() {
    let (addr_a, handle_a, join_a) = boot();
    let (addr_b, handle_b, join_b) = boot();
    let remotes = vec![addr_a.to_string(), addr_b.to_string()];

    let cfg = FleetConfig {
        model: "tinyrisc".to_owned(),
        seed_count: 4,
        self_check: true,
        timeout: Duration::from_secs(120),
        ..FleetConfig::default()
    };
    let report = fuzz_fleet(&remotes, &cfg);

    // Self-check does not split the range: both instances fuzz the
    // identical assignment, each must catch the injected fault, and
    // their reproducers — byte-identical programs — collapse to one
    // by content hash.
    for inst in &report.instances {
        assert!(inst.error.is_none(), "{}", report.table());
        assert_eq!(inst.seed_start, 0);
        assert_eq!(inst.seed_count, 4);
        assert_eq!(inst.found, 1, "each instance catches the injected fault");
    }
    assert_eq!(report.divergences(), 2, "pre-dedup count, one per instance");
    assert_eq!(report.reproducers.len(), 1, "deduplicated by content hash");
    assert_eq!(report.reproducers[0].model, "tinyrisc");

    handle_a.shutdown();
    handle_b.shutdown();
    join_a.join().expect("server a");
    join_b.join().expect("server b");
}

#[test]
fn cli_remote_fuzz_coordinates_in_process_instances() {
    let (addr_a, handle_a, join_a) = boot();
    let (addr_b, handle_b, join_b) = boot();

    let dir = std::env::temp_dir().join("lisa_fleet_cli_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let report_path = dir.join("fleet.json");

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_lisa-tool"))
        .args([
            "fuzz",
            "--model",
            "tinyrisc",
            "--iters",
            "24",
            "--max-len",
            "12",
            "--remote",
            &addr_a.to_string(),
            "--remote",
            &addr_b.to_string(),
            "--report",
            report_path.to_str().unwrap(),
        ])
        .output()
        .expect("lisa-tool runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "exit: {:?}\n{stdout}\n{stderr}", output.status.code());
    assert!(stdout.contains("fleet: 24 iterations"), "{stdout}");
    assert!(stdout.contains("0 divergence(s)"), "{stdout}");
    assert!(stdout.contains("12+12"), "disjoint halves in the table: {stdout}");

    // The fleet report is valid JSON with the merged view.
    let text = std::fs::read_to_string(&report_path).unwrap();
    let doc = lisa::metrics::json::parse(&text).expect("valid report JSON");
    let fleet = doc.get("tinyrisc").expect("per-model fleet entry");
    assert_eq!(
        fleet.get("passed").and_then(lisa::metrics::json::Value::as_bool),
        Some(true),
        "{text}"
    );

    std::fs::remove_dir_all(&dir).ok();
    handle_a.shutdown();
    handle_b.shutdown();
    join_a.join().expect("server a");
    join_b.join().expect("server b");
}

//! Cross-crate toolchain integration: the pretty-printer round-trips the
//! full bundled models, the documentation covers every instruction, and
//! the model statistics survive a print → re-parse cycle.

use lisa::core::model::ModelStats;
use lisa::core::{parser::parse, printer::print, Model};
use lisa::models::{accu16, scalar2, tinyrisc, vliw62};

fn sources() -> Vec<(&'static str, &'static str)> {
    vec![
        ("vliw62", vliw62::SOURCE),
        ("accu16", accu16::SOURCE),
        ("scalar2", scalar2::SOURCE),
        ("tinyrisc", tinyrisc::SOURCE),
    ]
}

#[test]
fn printer_round_trips_all_bundled_models() {
    for (name, source) in sources() {
        let first = parse(source).unwrap_or_else(|e| panic!("{name} parses: {e}"));
        let printed = print(&first);
        let second = parse(&printed).unwrap_or_else(|e| panic!("{name} re-parses: {e}\n{printed}"));
        assert_eq!(print(&second), printed, "{name}: printer is a fixpoint");
    }
}

#[test]
fn printed_models_build_identical_statistics() {
    for (name, source) in sources() {
        let original = Model::from_source(source).expect(name);
        let printed = print(&parse(source).expect(name));
        let reparsed = Model::from_source(&printed).expect(name);
        let (a, b) = (ModelStats::of(&original), ModelStats::of(&reparsed));
        assert_eq!(a.operations, b.operations, "{name}");
        assert_eq!(a.instructions, b.instructions, "{name}");
        assert_eq!(a.aliases, b.aliases, "{name}");
        assert_eq!(a.resources, b.resources, "{name}");
        assert_eq!(a.variants, b.variants, "{name}");
    }
}

#[test]
fn printed_vliw_model_simulates_identically() {
    // The strongest printer test: run the same program on the original
    // and the printed-and-reparsed model and compare final state.
    let original = vliw62::workbench().expect("builds");
    let printed_src = print(&parse(vliw62::SOURCE).expect("parses"));
    let printed = lisa::models::Workbench::from_source(
        Box::leak(printed_src.into_boxed_str()),
        "pmem",
        "halt",
    )
    .expect("printed model builds");

    let program = ["MVK A2, 6", "MVK A3, 7", "MPY A4, A2, A3", "NOP 2", "SADD A5, A4, A4", "HALT"];
    let mut results = Vec::new();
    for wb in [&original, &printed] {
        let sim = wb.run_program(&program, lisa::sim::SimMode::Compiled, 1000).expect("runs");
        let a = wb.model().resource_by_name("A").unwrap();
        let values: Vec<i64> = (0..16).map(|i| sim.state().read_int(a, &[i]).unwrap()).collect();
        results.push((sim.stats().cycles, values));
    }
    assert_eq!(results[0], results[1], "printed model behaves identically");
}

#[test]
fn manuals_document_every_instruction_and_alias() {
    for (name, source) in sources() {
        let model = Model::from_source(source).expect(name);
        let stats = ModelStats::of(&model);
        let manual = lisa::docgen::manual(&model, name);
        let sections = manual.matches("\n### `").count();
        assert_eq!(
            sections,
            stats.instructions + stats.aliases,
            "{name}: one manual section per instruction"
        );
        // Every pipeline is described.
        for pipe in model.pipelines() {
            assert!(manual.contains(&pipe.name), "{name}: pipeline {}", pipe.name);
        }
    }
}

#[test]
fn cli_binary_smoke_test() {
    // The CLI is exercised through its library path; here check the
    // builtin model specs resolve the same sources the workbenches use.
    let wb = tinyrisc::workbench().expect("builds");
    let program = lisa::asm::Assembler::new(wb.model())
        .assemble("LDI R1, 2\nADD R2, R1, R1\nHLT\n")
        .expect("assembles");
    assert_eq!(program.words.len(), 3);
    let listing = lisa::asm::Assembler::new(wb.model()).disassemble_listing(&program.words, 0);
    assert!(listing.contains("LDI R1, 2"));
    assert!(listing.contains("ADD R2, R1, R1"));
}

//! Interrupt-controller tests on vliw62 (the paper's C6201 model covers
//! "memory interface and interrupt controller", §4): acceptance,
//! priority, masking, global enable, delay-slot deferral, and precise
//! resume through IRET — in both simulation backends.

use lisa::models::vliw62;
use lisa::models::Workbench;
use lisa::sim::{SimMode, Simulator};

/// Main program: sets up one ISR at word 64 for lines 0 and 1, enables
/// interrupts, then counts A2 up in a loop until A2 == 40, then HALTs.
/// ISR: increments B5, then IRET.
const PROGRAM: &str = r#"
        LDVEC 0, isr
        LDVEC 1, isr
        LDIER 3          ; enable lines 0 and 1
        EINT
        MVK A2, 0
        MVK A3, 1
        MVK A4, 40
loop:   ADD .L A2, A2, A3
        CMPLT B2, A2, A4
        [B2] B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        HALT

        .org 64
isr:    ADDK B5, 1
        IRET
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1            ; IRET delay slots
"#;

fn load<'m>(wb: &'m Workbench, mode: SimMode) -> Simulator<'m> {
    let program = lisa::asm::Assembler::with_packet(wb.model(), vliw62::FETCH_PACKET, 1)
        .assemble(PROGRAM)
        .expect("assembles");
    let mut sim = wb.simulator(mode).expect("sim");
    sim.load_program("pmem", &program.words).unwrap();
    sim
}

fn reg(sim: &Simulator<'_>, file: &str, i: i64) -> i64 {
    sim.state().read_int(sim.model().resource_by_name(file).unwrap(), &[i]).unwrap()
}

fn scalar(sim: &Simulator<'_>, name: &str) -> i64 {
    sim.state().read_int(sim.model().resource_by_name(name).unwrap(), &[]).unwrap()
}

fn raise(sim: &mut Simulator<'_>, mask: i64) {
    let ifr = sim.model().resource_by_name("ifr").unwrap().clone();
    let current = sim.state().read_int(&ifr, &[]).unwrap();
    sim.state_mut().write_int(&ifr, &[], current | mask).unwrap();
}

fn run_to_halt(wb: &Workbench, sim: &mut Simulator<'_>) {
    let halt = wb.model().resource_by_name("halt").unwrap().clone();
    sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, 10_000).expect("halts");
}

#[test]
fn interrupt_is_serviced_and_execution_resumes_precisely() {
    let wb = vliw62::workbench().expect("builds");
    for mode in [SimMode::Interpretive, SimMode::Compiled] {
        let mut sim = load(&wb, mode);
        // Let setup + some loop iterations run, raise line 0, continue.
        sim.run(40).unwrap();
        raise(&mut sim, 1);
        run_to_halt(&wb, &mut sim);
        assert_eq!(reg(&sim, "B", 5), 1, "{mode:?}: ISR ran exactly once");
        assert_eq!(reg(&sim, "A", 2), 40, "{mode:?}: main loop completed correctly");
        assert_eq!(scalar(&sim, "in_isr"), 0, "{mode:?}: returned from the ISR");
        assert_eq!(scalar(&sim, "gie"), 1, "{mode:?}: interrupts re-enabled");
        assert_eq!(scalar(&sim, "ifr"), 0, "{mode:?}: flag cleared");
    }
}

#[test]
fn backends_agree_through_an_interrupt() {
    let wb = vliw62::workbench().expect("builds");
    let mut interp = load(&wb, SimMode::Interpretive);
    let mut compiled = load(&wb, SimMode::Compiled);
    for cycle in 0..200 {
        if cycle == 45 {
            raise(&mut interp, 1);
            raise(&mut compiled, 1);
        }
        interp.step().unwrap();
        compiled.step().unwrap();
        assert_eq!(interp.state(), compiled.state(), "diverged at cycle {cycle}");
    }
}

#[test]
fn masked_lines_are_ignored() {
    let wb = vliw62::workbench().expect("builds");
    let mut sim = load(&wb, SimMode::Compiled);
    sim.run(40).unwrap();
    raise(&mut sim, 0b0100); // line 2: not in IER (mask 3)
    run_to_halt(&wb, &mut sim);
    assert_eq!(reg(&sim, "B", 5), 0, "ISR never ran");
    assert_eq!(scalar(&sim, "ifr"), 0b0100, "flag stays pending");
}

#[test]
fn priority_services_lowest_line_first() {
    let wb = vliw62::workbench().expect("builds");
    let mut sim = load(&wb, SimMode::Interpretive);
    sim.run(40).unwrap();
    raise(&mut sim, 0b0011); // lines 0 and 1 together
                             // After the first acceptance, line 0 must be cleared, line 1 pending.
    let ifr = wb.model().resource_by_name("ifr").unwrap().clone();
    let in_isr = wb.model().resource_by_name("in_isr").unwrap().clone();
    sim.run_until(|st| st.read_int(&in_isr, &[]).unwrap_or(0) != 0, 100)
        .expect("interrupt accepted");
    assert_eq!(sim.state().read_int(&ifr, &[]).unwrap(), 0b0010, "line 0 taken first");
    run_to_halt(&wb, &mut sim);
    assert_eq!(reg(&sim, "B", 5), 2, "both lines eventually serviced");
    assert_eq!(scalar(&sim, "ifr"), 0);
}

#[test]
fn dint_defers_until_eint() {
    let wb = vliw62::workbench().expect("builds");
    // Program with interrupts disabled the whole run.
    let program = r#"
        LDVEC 0, isr
        LDIER 1
        DINT
        MVK A1, 30
        MVK A3, 1
loop:   SUB .L A1, A1, A3
        [A1] B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        HALT
        .org 64
isr:    ADDK B5, 1
        IRET
        NOP 5
"#;
    let image = lisa::asm::Assembler::with_packet(wb.model(), vliw62::FETCH_PACKET, 1)
        .assemble(program)
        .expect("assembles");
    let mut sim = wb.simulator(SimMode::Compiled).expect("sim");
    sim.load_program("pmem", &image.words).unwrap();
    sim.run(30).unwrap();
    raise(&mut sim, 1);
    run_to_halt(&wb, &mut sim);
    assert_eq!(reg(&sim, "B", 5), 0, "ISR blocked by DINT");
    assert_eq!(scalar(&sim, "ifr"), 1, "request still pending at halt");
}

#[test]
fn interrupts_wait_out_branch_delay_slots() {
    let wb = vliw62::workbench().expect("builds");
    let mut sim = load(&wb, SimMode::Interpretive);
    sim.run(40).unwrap();
    // Find a cycle where a branch is pending, then raise the line.
    let br_pending = wb.model().resource_by_name("br_pending").unwrap().clone();
    sim.run_until(|st| st.read_int(&br_pending, &[]).unwrap_or(0) != 0, 200)
        .expect("a loop branch is in flight");
    raise(&mut sim, 1);
    let in_isr = wb.model().resource_by_name("in_isr").unwrap().clone();
    // Not taken immediately (delay slots in progress)...
    sim.step().unwrap();
    assert_eq!(sim.state().read_int(&in_isr, &[]).unwrap(), 0);
    // ...but taken soon after, and the program still finishes correctly.
    run_to_halt(&wb, &mut sim);
    assert_eq!(reg(&sim, "B", 5), 1);
    assert_eq!(reg(&sim, "A", 2), 40);
}

//! End-to-end tests of the `lisa-tool` command-line binary, driving the
//! real executable the way a user would.

use std::fs;
use std::process::Command;

fn lisa_tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lisa-tool"))
}

fn run_ok(args: &[&str]) -> String {
    let output = lisa_tool().args(args).output().expect("binary runs");
    assert!(
        output.status.success(),
        "lisa-tool {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 output")
}

#[test]
fn check_reports_model_shape() {
    let out = run_ok(&["check", "@vliw62"]);
    assert!(out.contains("ok:"), "{out}");
    assert!(out.contains("operations"), "{out}");
}

#[test]
fn stats_prints_the_e1_metrics() {
    let out = run_ok(&["stats", "@tinyrisc"]);
    assert!(out.contains("instructions:     15"), "{out}");
    assert!(out.contains("aliases:          1"), "{out}");
}

#[test]
fn doc_writes_a_manual() {
    let dir = std::env::temp_dir().join("lisa_cli_doc_test");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("manual.md");
    let path_str = path.to_str().unwrap();
    let out = run_ok(&["doc", "@accu16", "-o", path_str]);
    assert!(out.contains("wrote"), "{out}");
    let manual = fs::read_to_string(&path).unwrap();
    assert!(manual.contains("# accu16 Instruction Set Manual"));
    assert!(manual.contains("### `mac`"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn asm_run_and_disasm_round_trip() {
    let dir = std::env::temp_dir().join("lisa_cli_asm_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.s");
    let hex = dir.join("prog.hex");
    fs::write(&src, "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nST R3, R1\nHLT\n").unwrap();

    // Assemble to a hex image.
    let out = run_ok(&["asm", "@tinyrisc", src.to_str().unwrap(), "-o", hex.to_str().unwrap()]);
    assert!(out.contains("MUL R3, R1, R2"), "listing shown: {out}");
    assert!(out.contains("wrote 5 words"), "{out}");

    // Disassemble the image back.
    let out = run_ok(&["disasm", "@tinyrisc", hex.to_str().unwrap()]);
    assert!(out.contains("LDI R1, 6"), "{out}");
    assert!(out.contains("HLT"), "{out}");

    // Run it and dump the register file.
    let out =
        run_ok(&["run", "@tinyrisc", src.to_str().unwrap(), "--mode", "interp", "--dump", "R:8"]);
    assert!(out.contains("halted after"), "{out}");
    assert!(out.contains("R = 0 6 7 42"), "{out}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_vliw_program_with_packets() {
    let dir = std::env::temp_dir().join("lisa_cli_vliw_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.s");
    fs::write(&src, "MVK A2, 5\n || MVK B2, 6\nADD .L A3, A2, B2\nHALT\n").unwrap();
    let out = run_ok(&["run", "@vliw62", src.to_str().unwrap(), "--dump", "A:4"]);
    assert!(out.contains("A = 0 0 5 11"), "{out}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_emits_json_lines_and_vcd() {
    let dir = std::env::temp_dir().join("lisa_cli_trace_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.s");
    fs::write(&src, "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n").unwrap();

    // JSON lines to stdout: every line is one well-formed JSON object
    // with the mandatory cycle/kind fields.
    let out = run_ok(&["trace", "@tinyrisc", src.to_str().unwrap()]);
    assert!(!out.is_empty());
    for line in out.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
        assert!(line.contains("\"cycle\":"), "{line}");
        assert!(line.contains("\"kind\":\""), "{line}");
    }
    assert!(out.lines().any(|l| l.contains("\"kind\":\"exec\"")), "{out}");
    assert!(out.lines().any(|l| l.contains("\"kind\":\"register_write\"")), "{out}");

    // JSON lines to a file via --out.
    let jsonl = dir.join("trace.jsonl");
    let out =
        run_ok(&["trace", "@tinyrisc", src.to_str().unwrap(), "--out", &jsonl.to_string_lossy()]);
    assert!(out.contains("wrote"), "{out}");
    assert!(fs::read_to_string(&jsonl).unwrap().lines().count() > 4);

    // VCD: header, at least one var, timestamped value changes.
    let vcd = run_ok(&["trace", "@tinyrisc", src.to_str().unwrap(), "--vcd"]);
    assert!(vcd.contains("$timescale"), "{vcd}");
    assert!(vcd.contains("$var wire"), "{vcd}");
    assert!(vcd.contains("$enddefinitions $end"), "{vcd}");
    assert!(vcd.lines().any(|l| l.starts_with('#')), "{vcd}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_prints_the_execution_report() {
    let dir = std::env::temp_dir().join("lisa_cli_profile_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.s");
    fs::write(&src, "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n").unwrap();
    let out = run_ok(&["profile", "@tinyrisc", src.to_str().unwrap(), "--mode", "interp"]);
    assert!(out.contains("halted after"), "{out}");
    assert!(out.contains("per-operation execution histogram"), "{out}");
    assert!(out.contains("ldi"), "{out}");
    assert!(out.contains("hot PCs"), "{out}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_runs_the_kernel_matrix() {
    let out = run_ok(&["batch", "--workers", "2", "--mode", "interp"]);
    assert!(out.contains("0 failed"), "{out}");
    assert!(out.contains("on 2 workers"), "{out}");
    assert!(!out.contains("merged fleet profile"), "no profile without --profile: {out}");

    let out = run_ok(&["batch", "--workers", "2", "--mode", "interp", "--profile"]);
    assert!(out.contains("merged fleet profile"), "{out}");
    assert!(out.contains("per-operation execution histogram"), "{out}");
    assert!(out.contains("stage"), "{out}");
}

#[test]
fn unknown_simulation_mode_is_a_usage_error() {
    // `run` (sim_mode) and `batch` (mode list) both reject unknown
    // backends with exit 2 and a diagnostic naming the valid set.
    let dir = std::env::temp_dir().join("lisa_cli_badmode_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("mode.s");
    fs::write(&src, "HLT\n").unwrap();
    let output = lisa_tool()
        .args(["run", "@tinyrisc", src.to_str().unwrap(), "--mode", "sideways"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("unknown mode `sideways`"), "{err}");
    assert!(err.contains("interp|compiled|ops"), "{err}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn ops_mode_runs_and_reports_like_the_others() {
    let dir = std::env::temp_dir().join("lisa_cli_opsmode_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("ops.s");
    fs::write(&src, "LDI R1, 7\nLDI R2, 5\nADD R3, R1, R2\nHLT\n").unwrap();
    let out =
        run_ok(&["run", "@tinyrisc", src.to_str().unwrap(), "--mode", "ops", "--dump", "R:4"]);
    assert!(out.contains("halted after 4 control steps"), "{out}");
    assert!(out.contains("Ops"), "{out}");
    assert!(out.contains("12"), "R3 should hold 12: {out}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_and_model_errors_exit_2() {
    let output = lisa_tool().args(["check", "/nonexistent.lisa"]).output().unwrap();
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot read model"));

    let output = lisa_tool().args(["frobnicate"]).output().unwrap();
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown command"));

    let output = lisa_tool().output().unwrap();
    assert_eq!(output.status.code(), Some(2), "no arguments is a usage error");

    let output = lisa_tool().args(["batch", "--mode", "sideways"]).output().unwrap();
    assert_eq!(output.status.code(), Some(2));

    // An unreadable baseline must be rejected *before* the benchmark
    // runs, so no `--out` is needed: a regression here would otherwise
    // overwrite docs/BENCH_<date>.json with this test binary's numbers.
    let output =
        lisa_tool().args(["bench", "--quick", "--baseline", "/nonexistent.json"]).output().unwrap();
    assert_eq!(output.status.code(), Some(2), "unreadable baseline is a usage error");
    assert!(
        !String::from_utf8_lossy(&output.stdout).contains("wrote "),
        "bench must not write a trajectory when the baseline is unusable"
    );
}

#[test]
fn serve_once_answers_a_request_and_exits_0() {
    use std::io::{BufRead, BufReader, Read, Write};

    let mut child = lisa_tool()
        .args(["serve", "--addr", "127.0.0.1:0", "--once", "--timeout-ms", "10000"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The announce line carries the resolved ephemeral port.
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut announce = String::new();
    stdout.read_line(&mut announce).expect("read announce line");
    assert!(announce.starts_with("serving on http://"), "{announce}");
    let addr = announce
        .trim_start_matches("serving on http://")
        .split_whitespace()
        .next()
        .expect("address in announce line")
        .to_owned();

    let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
    conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    drop(conn);

    let status = child.wait().expect("child exits");
    assert_eq!(status.code(), Some(0), "--once must exit 0 after one connection");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("drain stdout");
    assert!(rest.contains("accepted 1 connection"), "{rest}");
}

#[test]
fn serve_flag_validation_exits_2() {
    // Unbindable address.
    let output = lisa_tool().args(["serve", "--addr", "999.0.0.1:0", "--once"]).output().unwrap();
    assert_eq!(output.status.code(), Some(2), "bad --addr is a usage error");
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot bind"));

    // Zero-capacity queue.
    let output = lisa_tool().args(["serve", "--queue", "0", "--once"]).output().unwrap();
    assert_eq!(output.status.code(), Some(2), "zero --queue is a usage error");
    assert!(String::from_utf8_lossy(&output.stderr).contains("--queue"));

    // Zero workers.
    let output = lisa_tool().args(["serve", "--workers", "0", "--once"]).output().unwrap();
    assert_eq!(output.status.code(), Some(2), "zero --workers is a usage error");
    assert!(String::from_utf8_lossy(&output.stderr).contains("--workers"));
}

#[test]
fn run_reports_simulated_mips() {
    let dir = std::env::temp_dir().join("lisa_cli_mips_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.s");
    fs::write(&src, "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n").unwrap();
    let out = run_ok(&["run", "@tinyrisc", src.to_str().unwrap()]);
    assert!(out.contains("simulated MIPS"), "{out}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_dumps_prometheus_metrics() {
    let dir = std::env::temp_dir().join("lisa_cli_batch_metrics_test");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.prom");
    let out = run_ok(&[
        "batch",
        "--workers",
        "2",
        "--mode",
        "compiled",
        "--metrics",
        path.to_str().unwrap(),
    ]);
    assert!(out.contains("0 failed"), "{out}");
    assert!(out.contains("job latency: min"), "{out}");
    let text = fs::read_to_string(&path).unwrap();
    assert!(text.contains("# TYPE lisa_exec_jobs_started_total counter"), "{text}");
    assert!(text.contains("lisa_exec_job_duration_us_bucket"), "{text}");
    assert!(text.contains("lisa_sim_cycles_total{backend=\"compiled\"}"), "{text}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_and_trace_dump_prometheus_metrics() {
    let dir = std::env::temp_dir().join("lisa_cli_run_metrics_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.s");
    fs::write(&src, "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n").unwrap();

    // `run --metrics` writes the simulator counters in Prometheus
    // exposition format, labelled with the backend that produced them.
    let prom = dir.join("run.prom");
    let out = run_ok(&[
        "run",
        "@tinyrisc",
        src.to_str().unwrap(),
        "--mode",
        "compiled",
        "--metrics",
        prom.to_str().unwrap(),
    ]);
    assert!(out.contains("halted after"), "{out}");
    let text = fs::read_to_string(&prom).unwrap();
    assert!(text.contains("# TYPE lisa_sim_cycles_total counter"), "{text}");
    assert!(text.contains("lisa_sim_cycles_total{backend=\"compiled\"}"), "{text}");
    assert!(text.contains("lisa_sim_instructions_retired_total{backend=\"compiled\"}"), "{text}");

    // `trace --metrics` does the same for the tracing path.
    let prom = dir.join("trace.prom");
    run_ok(&[
        "trace",
        "@tinyrisc",
        src.to_str().unwrap(),
        "--mode",
        "interp",
        "--metrics",
        prom.to_str().unwrap(),
    ]);
    let text = fs::read_to_string(&prom).unwrap();
    assert!(text.contains("lisa_sim_cycles_total{backend=\"interpretive\"}"), "{text}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_with_probes_reports_hits_and_breakpoints() {
    let dir = std::env::temp_dir().join("lisa_cli_probe_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.s");
    fs::write(&src, "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nST R3, R1\nHLT\n").unwrap();

    // Watch + register probes: the run halts normally and the hit
    // report enumerates every armed probe with its hit count.
    let out =
        run_ok(&["run", "@tinyrisc", src.to_str().unwrap(), "--probe", "watch dmem; reg R[3]"]);
    assert!(out.contains("halted after"), "{out}");
    assert!(out.contains("probe hits (2 total)"), "{out}");
    assert!(out.contains("watch dmem: 1"), "{out}");
    assert!(out.contains("reg R[3]: 1"), "{out}");

    // A breakpoint stops the run early and names the probe and PC.
    let out = run_ok(&["run", "@tinyrisc", src.to_str().unwrap(), "--probe", "break 2"]);
    assert!(out.contains("stopped at breakpoint `break 2` (pc 2)"), "{out}");

    // An unparseable probe expression is a usage error.
    let output = lisa_tool()
        .args(["run", "@tinyrisc", src.to_str().unwrap(), "--probe", "watch nosuch"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2), "bad probe target is a usage error");
    assert!(String::from_utf8_lossy(&output.stderr).contains("nosuch"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_writes_the_architecture_profile() {
    let dir = std::env::temp_dir().join("lisa_cli_archprof_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.s");
    fs::write(&src, "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nST R3, R1\nHLT\n").unwrap();

    // `.json` suffix selects the machine-readable rendering.
    let json = dir.join("arch.json");
    run_ok(&["run", "@tinyrisc", src.to_str().unwrap(), "--arch-profile", json.to_str().unwrap()]);
    let text = fs::read_to_string(&json).unwrap();
    assert!(text.contains("\"cycles\":"), "{text}");
    assert!(text.contains("\"op_execs\":"), "{text}");
    assert!(text.contains("\"write_heat\":"), "{text}");

    // Any other suffix gets the human report.
    let txt = dir.join("arch.txt");
    run_ok(&["run", "@tinyrisc", src.to_str().unwrap(), "--arch-profile", txt.to_str().unwrap()]);
    let text = fs::read_to_string(&txt).unwrap();
    assert!(text.contains("operation executions"), "{text}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn inspect_prints_the_architecture_report() {
    let dir = std::env::temp_dir().join("lisa_cli_inspect_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.s");
    fs::write(&src, "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nST R3, R1\nHLT\n").unwrap();

    let out = run_ok(&["inspect", "@tinyrisc", src.to_str().unwrap()]);
    assert!(out.contains("ran 5 control steps"), "{out}");
    assert!(out.contains("operation executions"), "{out}");
    assert!(out.contains("memory writes:"), "{out}");

    // Probes armed through inspect show up in the report body.
    let out = run_ok(&["inspect", "@tinyrisc", src.to_str().unwrap(), "--probe", "watch dmem"]);
    assert!(out.contains("probe hits (1 total)"), "{out}");
    let hit_line = out.lines().find(|l| l.trim_start().starts_with("watch dmem"));
    assert_eq!(hit_line.map(|l| l.split_whitespace().last()), Some(Some("1")), "{out}");

    // --json emits the machine-readable profile instead.
    let out = run_ok(&["inspect", "@tinyrisc", src.to_str().unwrap(), "--json"]);
    let line = out.lines().next().unwrap_or_default();
    assert!(line.starts_with('{') && line.ends_with('}'), "not JSON: {out}");
    assert!(out.contains("\"stage_busy\":"), "{out}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn fuzz_fails_fast_on_a_tampered_corpus() {
    // A canonical `<model>-<16 hex>.repro` name whose contents hash to
    // something else: the corpus cannot be trusted, so `fuzz` must exit
    // 1 with a typed diagnostic *before* doing any fuzzing work.
    let dir = std::env::temp_dir().join("lisa_cli_fuzz_tamper_test");
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    fs::write(
        dir.join("tinyrisc-0000000000000000.repro"),
        "# lisa-conform reproducer\nmodel = tinyrisc\nseed = 0\noracle = lockstep\nword = 0xf000\n",
    )
    .unwrap();
    let output = lisa_tool()
        .args(["fuzz", "--model", "tinyrisc", "--iters", "1", "--corpus-dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "tampered corpus must abort the run");
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("content hash mismatch"), "{err}");
    assert!(err.contains("file name says 0000000000000000"), "{err}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn fuzz_fails_fast_on_an_unreadable_corpus_entry() {
    // A directory carrying the .repro extension cannot be read as a
    // file — unlike permission bits, this stays unreadable under root.
    let dir = std::env::temp_dir().join("lisa_cli_fuzz_unread_test");
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(dir.join("trap.repro")).unwrap();
    let output = lisa_tool()
        .args(["fuzz", "--model", "tinyrisc", "--iters", "1", "--corpus-dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "unreadable corpus entry must abort the run");
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("corpus file unreadable"), "{err}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn fuzz_distills_a_covering_seed_set() {
    let dir = std::env::temp_dir().join("lisa_cli_fuzz_distill_test");
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("distill.json");
    let out = run_ok(&[
        "fuzz",
        "--model",
        "tinyrisc",
        "--iters",
        "30",
        "--max-len",
        "12",
        "--distill",
        path.to_str().unwrap(),
    ]);
    assert!(out.contains("coding-tree path(s) covered"), "{out}");
    assert!(out.contains("distilled to"), "{out}");
    let text = fs::read_to_string(&path).unwrap();
    let doc = lisa::metrics::json::parse(&text).expect("distill file is valid JSON");
    let entry = doc.get("tinyrisc").expect("per-model entry");
    let paths = entry.get("paths").and_then(lisa::metrics::json::Value::as_u64).unwrap_or(0);
    assert!(paths > 0, "{text}");
    let indices =
        entry.get("indices").and_then(lisa::metrics::json::Value::as_array).expect("indices array");
    assert!(!indices.is_empty() && indices.len() <= 30, "{text}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_writes_trajectory_and_gates_on_baseline() {
    let dir = std::env::temp_dir().join("lisa_cli_bench_test");
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    let out = run_ok(&["bench", "--quick", "--repeats", "1", "--out", dir.to_str().unwrap()]);
    assert!(out.contains("MIPS"), "{out}");
    assert!(out.contains("wrote"), "{out}");

    // Exactly one BENCH_<date>.json appeared, with the expected schema
    // and the full model × backend matrix.
    let files: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    assert_eq!(files.len(), 1, "{files:?}");
    let text = fs::read_to_string(&files[0]).unwrap();
    assert!(text.contains("\"schema\": \"lisa-bench/1\""), "{text}");
    for model in ["vliw62", "accu16", "scalar2", "tinyrisc"] {
        assert!(text.contains(model), "missing {model}: {text}");
    }
    for backend in ["interpretive", "compiled"] {
        assert!(text.contains(backend), "missing {backend}: {text}");
    }

    // Comparing a run against itself is clean (exit 0)...
    let baseline = dir.join("baseline.json");
    fs::copy(&files[0], &baseline).unwrap();
    let out = run_ok(&[
        "bench",
        "--quick",
        "--repeats",
        "1",
        "--out",
        dir.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--threshold",
        "99",
    ]);
    assert!(out.contains("no regressions"), "{out}");

    // ...but a synthetically 100x-faster baseline makes the current run
    // a regression: exit 1, with the offending cells named.
    let sped_up = fs::read_to_string(&baseline)
        .unwrap()
        .lines()
        .map(|line| {
            if line.trim_start().starts_with("{\"model\"") {
                // Divide every wall-clock field by 100 (min 1 µs).
                let mut out = line.to_owned();
                for key in ["\"min\": ", "\"p50\": ", "\"p99\": ", "\"max\": "] {
                    if let Some(start) = out.find(key) {
                        let vstart = start + key.len();
                        let vend = out[vstart..]
                            .find(|c: char| !c.is_ascii_digit())
                            .map_or(out.len(), |i| vstart + i);
                        let v: u64 = out[vstart..vend].parse().unwrap();
                        out = format!("{}{}{}", &out[..vstart], (v / 100).max(1), &out[vend..]);
                    }
                }
                out
            } else {
                line.to_owned()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let fast = dir.join("fast_baseline.json");
    fs::write(&fast, sped_up).unwrap();
    let output = lisa_tool()
        .args([
            "bench",
            "--quick",
            "--repeats",
            "1",
            "--out",
            dir.to_str().unwrap(),
            "--baseline",
            fast.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "regression must exit 1");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("perf regression"), "{stderr}");
    assert!(stderr.contains("MIPS vs baseline"), "{stderr}");
    fs::remove_dir_all(&dir).ok();
}

//! End-to-end tests of the `lisa-tool` command-line binary, driving the
//! real executable the way a user would.

use std::fs;
use std::process::Command;

fn lisa_tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lisa-tool"))
}

fn run_ok(args: &[&str]) -> String {
    let output = lisa_tool().args(args).output().expect("binary runs");
    assert!(
        output.status.success(),
        "lisa-tool {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 output")
}

#[test]
fn check_reports_model_shape() {
    let out = run_ok(&["check", "@vliw62"]);
    assert!(out.contains("ok:"), "{out}");
    assert!(out.contains("operations"), "{out}");
}

#[test]
fn stats_prints_the_e1_metrics() {
    let out = run_ok(&["stats", "@tinyrisc"]);
    assert!(out.contains("instructions:     15"), "{out}");
    assert!(out.contains("aliases:          1"), "{out}");
}

#[test]
fn doc_writes_a_manual() {
    let dir = std::env::temp_dir().join("lisa_cli_doc_test");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("manual.md");
    let path_str = path.to_str().unwrap();
    let out = run_ok(&["doc", "@accu16", "-o", path_str]);
    assert!(out.contains("wrote"), "{out}");
    let manual = fs::read_to_string(&path).unwrap();
    assert!(manual.contains("# accu16 Instruction Set Manual"));
    assert!(manual.contains("### `mac`"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn asm_run_and_disasm_round_trip() {
    let dir = std::env::temp_dir().join("lisa_cli_asm_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.s");
    let hex = dir.join("prog.hex");
    fs::write(&src, "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nST R3, R1\nHLT\n").unwrap();

    // Assemble to a hex image.
    let out = run_ok(&["asm", "@tinyrisc", src.to_str().unwrap(), "-o", hex.to_str().unwrap()]);
    assert!(out.contains("MUL R3, R1, R2"), "listing shown: {out}");
    assert!(out.contains("wrote 5 words"), "{out}");

    // Disassemble the image back.
    let out = run_ok(&["disasm", "@tinyrisc", hex.to_str().unwrap()]);
    assert!(out.contains("LDI R1, 6"), "{out}");
    assert!(out.contains("HLT"), "{out}");

    // Run it and dump the register file.
    let out =
        run_ok(&["run", "@tinyrisc", src.to_str().unwrap(), "--mode", "interp", "--dump", "R:8"]);
    assert!(out.contains("halted after"), "{out}");
    assert!(out.contains("R = 0 6 7 42"), "{out}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_vliw_program_with_packets() {
    let dir = std::env::temp_dir().join("lisa_cli_vliw_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.s");
    fs::write(&src, "MVK A2, 5\n || MVK B2, 6\nADD .L A3, A2, B2\nHALT\n").unwrap();
    let out = run_ok(&["run", "@vliw62", src.to_str().unwrap(), "--dump", "A:4"]);
    assert!(out.contains("A = 0 0 5 11"), "{out}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_emits_json_lines_and_vcd() {
    let dir = std::env::temp_dir().join("lisa_cli_trace_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.s");
    fs::write(&src, "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n").unwrap();

    // JSON lines to stdout: every line is one well-formed JSON object
    // with the mandatory cycle/kind fields.
    let out = run_ok(&["trace", "@tinyrisc", src.to_str().unwrap()]);
    assert!(!out.is_empty());
    for line in out.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
        assert!(line.contains("\"cycle\":"), "{line}");
        assert!(line.contains("\"kind\":\""), "{line}");
    }
    assert!(out.lines().any(|l| l.contains("\"kind\":\"exec\"")), "{out}");
    assert!(out.lines().any(|l| l.contains("\"kind\":\"register_write\"")), "{out}");

    // JSON lines to a file via --out.
    let jsonl = dir.join("trace.jsonl");
    let out =
        run_ok(&["trace", "@tinyrisc", src.to_str().unwrap(), "--out", &jsonl.to_string_lossy()]);
    assert!(out.contains("wrote"), "{out}");
    assert!(fs::read_to_string(&jsonl).unwrap().lines().count() > 4);

    // VCD: header, at least one var, timestamped value changes.
    let vcd = run_ok(&["trace", "@tinyrisc", src.to_str().unwrap(), "--vcd"]);
    assert!(vcd.contains("$timescale"), "{vcd}");
    assert!(vcd.contains("$var wire"), "{vcd}");
    assert!(vcd.contains("$enddefinitions $end"), "{vcd}");
    assert!(vcd.lines().any(|l| l.starts_with('#')), "{vcd}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_prints_the_execution_report() {
    let dir = std::env::temp_dir().join("lisa_cli_profile_test");
    fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.s");
    fs::write(&src, "LDI R1, 6\nLDI R2, 7\nMUL R3, R1, R2\nHLT\n").unwrap();
    let out = run_ok(&["profile", "@tinyrisc", src.to_str().unwrap(), "--mode", "interp"]);
    assert!(out.contains("halted after"), "{out}");
    assert!(out.contains("per-operation execution histogram"), "{out}");
    assert!(out.contains("ldi"), "{out}");
    assert!(out.contains("hot PCs"), "{out}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_runs_the_kernel_matrix() {
    let out = run_ok(&["batch", "--workers", "2", "--mode", "interp"]);
    assert!(out.contains("0 failed"), "{out}");
    assert!(out.contains("on 2 workers"), "{out}");
    assert!(!out.contains("merged fleet profile"), "no profile without --profile: {out}");

    let out = run_ok(&["batch", "--workers", "2", "--mode", "interp", "--profile"]);
    assert!(out.contains("merged fleet profile"), "{out}");
    assert!(out.contains("per-operation execution histogram"), "{out}");
    assert!(out.contains("stage"), "{out}");

    let output = lisa_tool().args(["batch", "--mode", "sideways"]).output().unwrap();
    assert!(!output.status.success());
}

#[test]
fn errors_exit_nonzero_with_messages() {
    let output = lisa_tool().args(["check", "/nonexistent.lisa"]).output().unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot read model"));

    let output = lisa_tool().args(["frobnicate"]).output().unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown command"));

    let output = lisa_tool().output().unwrap();
    assert!(!output.status.success());
}

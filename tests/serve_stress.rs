//! Concurrency stress for the service: many client threads hammering a
//! deliberately small worker pool with pipelined keep-alive requests.
//! Invariants: every request gets exactly one response, the endpoint
//! counters agree with the client-side tally, and graceful shutdown
//! under load *drains* queued work instead of dropping it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use lisa::metrics::{MetricKey, MetricValue};
use lisa::serve::{AppState, ServeConfig, Server, ServerHandle};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 8;

fn boot(
    workers: usize,
    queue: usize,
) -> (SocketAddr, ServerHandle, Arc<AppState>, std::thread::JoinHandle<()>) {
    let state = Arc::new(AppState::new());
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue,
        timeout: Duration::from_secs(10),
        once: false,
        ..ServeConfig::default()
    };
    let server = Server::bind(config, Arc::clone(&state)).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle, state, join)
}

/// Reads exactly `n` HTTP responses off a connection, returning their
/// status codes. Panics on a malformed head (that *is* the test).
fn read_responses(conn: &mut TcpStream, n: usize) -> Vec<u16> {
    let mut statuses = Vec::with_capacity(n);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    while statuses.len() < n {
        // One complete head available?
        let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4);
        if let Some(head_end) = head_end {
            let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
            assert!(head.starts_with("HTTP/1.1 "), "malformed status line: {head:?}");
            let status: u16 = head["HTTP/1.1 ".len()..][..3].parse().expect("status code");
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse().ok())?
                })
                .expect("Content-Length header");
            if buf.len() >= head_end + content_length {
                buf.drain(..head_end + content_length);
                statuses.push(status);
                continue;
            }
        }
        let got = conn.read(&mut chunk).expect("read");
        assert!(got > 0, "server closed with {} of {n} responses received", statuses.len());
        buf.extend_from_slice(&chunk[..got]);
    }
    statuses
}

#[test]
fn pipelined_load_gets_exactly_one_response_per_request() {
    // 2 workers vs 4 clients; queue big enough that nothing sheds.
    let (addr, handle, state, join) = boot(2, 32);

    let tiny = br#"{"model": "tinyrisc", "program": "LDI R1, 1\nHLT\n", "max_cycles": 100}"#;
    let one_request =
        format!("POST /v1/simulate HTTP/1.1\r\nHost: s\r\nContent-Length: {}\r\n\r\n", tiny.len());

    let mut clients = Vec::new();
    for _ in 0..CLIENTS {
        let one_request = one_request.clone();
        clients.push(std::thread::spawn(move || {
            let mut conn = TcpStream::connect(addr).expect("connect");
            conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            // Pipeline the whole batch: write every request up front,
            // only then start reading responses.
            let mut batch = Vec::new();
            for _ in 0..REQUESTS_PER_CLIENT {
                batch.extend_from_slice(one_request.as_bytes());
                batch.extend_from_slice(tiny);
            }
            conn.write_all(&batch).expect("write pipeline");
            read_responses(&mut conn, REQUESTS_PER_CLIENT)
        }));
    }

    let mut ok = 0usize;
    for client in clients {
        let statuses = client.join().expect("client thread");
        assert_eq!(statuses.len(), REQUESTS_PER_CLIENT);
        ok += statuses.iter().filter(|&&s| s == 200).count();
    }
    assert_eq!(ok, CLIENTS * REQUESTS_PER_CLIENT, "every request must succeed");

    // The shared registry agrees with the client-side tally.
    let snap = state.registry().snapshot();
    let key = MetricKey::new(
        "lisa_serve_requests_total",
        &[("endpoint", "/v1/simulate"), ("status", "200")],
    );
    assert_eq!(
        snap.metrics.get(&key),
        Some(&MetricValue::Counter((CLIENTS * REQUESTS_PER_CLIENT) as u64))
    );

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn graceful_shutdown_drains_queued_connections() {
    // One worker, deep queue: connections pile up behind a slow-ish
    // request, then shutdown fires while they are still queued.
    let (addr, handle, _state, join) = boot(1, 32);

    let mut conns = Vec::new();
    for _ in 0..6 {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: s\r\nConnection: close\r\n\r\n")
            .expect("write");
        conns.push(conn);
    }
    // Give the acceptor a moment to queue them, then pull the plug.
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();

    // Every queued connection still gets its response (drain, not drop).
    for mut conn in conns {
        let mut raw = Vec::new();
        conn.read_to_end(&mut raw).expect("read drained response");
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 200"), "drained connection got: {text:?}");
    }

    join.join().expect("server thread");
}

//! Property-based tests over the generated ISA tools (experiment E6):
//! encode/decode and assemble/disassemble inverses on the vliw62 model,
//! with randomly generated operands.

use lisa::isa::{Assembler, Decoder};
use lisa::models::{tinyrisc, vliw62};
use proptest::prelude::*;

fn reg_name(side: bool, idx: u8) -> String {
    format!("{}{}", if side { "B" } else { "A" }, idx % 16)
}

/// Random three-register statements over the vliw62 L/S/M/D units.
fn three_reg_statement() -> impl Strategy<Value = String> {
    let mnemonic = prop_oneof![
        Just("ADD .L"),
        Just("SUB .L"),
        Just("AND .L"),
        Just("OR .L"),
        Just("XOR .L"),
        Just("CMPEQ"),
        Just("CMPGT"),
        Just("CMPLT"),
        Just("CMPGTU"),
        Just("CMPLTU"),
        Just("SADD"),
        Just("SSUB"),
        Just("ADD .S"),
        Just("SUB .S"),
        Just("ADD .D"),
        Just("SUB .D"),
        Just("MPY"),
        Just("MPYU"),
        Just("MPYH"),
        Just("SMPY"),
        Just("ADD2"),
        Just("SUB2"),
        Just("SUBC"),
        Just("LMBD"),
        Just("AND .S"),
        Just("OR .S"),
        Just("XOR .S"),
        Just("CMPEQ2"),
        Just("CMPGT2"),
        Just("MAX2"),
        Just("MIN2"),
        Just("MPYSU"),
        Just("MPYUS"),
        Just("ADDAB"),
        Just("ADDAH"),
        Just("ADDAW"),
        Just("SUBAB"),
        Just("SUBAH"),
        Just("SUBAW"),
    ];
    (mnemonic, any::<(bool, u8)>(), any::<(bool, u8)>(), any::<(bool, u8)>()).prop_map(
        |(m, d, s1, s2)| {
            format!(
                "{m} {}, {}, {}",
                reg_name(d.0, d.1),
                reg_name(s1.0, s1.1),
                reg_name(s2.0, s2.1)
            )
        },
    )
}

fn predicated_statement() -> impl Strategy<Value = String> {
    let pred = prop_oneof![
        Just(""),
        Just("[B0] "),
        Just("[B1] "),
        Just("[B2] "),
        Just("[A1] "),
        Just("[!B0] "),
        Just("[!B1] "),
        Just("[!A1] "),
    ];
    (pred, three_reg_statement()).prop_map(|(p, s)| format!("{p}{s}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// assemble → encode → decode → disassemble is the identity on
    /// canonical statements.
    #[test]
    fn vliw_statement_round_trip(stmt in predicated_statement()) {
        let wb = vliw62::workbench().expect("builds");
        let decoder = Decoder::new(wb.model()).expect("decoder");
        let asm = Assembler::new(wb.model(), &decoder);
        let decoded = asm.assemble_instruction(&stmt).expect("assembles");
        let word = decoded.encode(wb.model()).expect("encodes");
        let back = decoder.decode(word.to_u128()).expect("decodes");
        prop_assert_eq!(asm.disassemble(&back), stmt);
    }

    /// Signed 16-bit immediates round-trip through MVK/ADDK.
    #[test]
    fn vliw_imm16_round_trip(dst in any::<(bool, u8)>(), imm in -32768i32..=32767) {
        let wb = vliw62::workbench().expect("builds");
        let decoder = Decoder::new(wb.model()).expect("decoder");
        let asm = Assembler::new(wb.model(), &decoder);
        for m in ["MVK", "ADDK"] {
            let stmt = format!("{m} {}, {imm}", reg_name(dst.0, dst.1));
            let decoded = asm.assemble_instruction(&stmt).expect("assembles");
            let word = decoded.encode(wb.model()).expect("encodes");
            let back = decoder.decode(word.to_u128()).expect("decodes");
            prop_assert_eq!(asm.disassemble(&back), stmt);
        }
    }

    /// Memory operands round-trip with scaled unsigned offsets.
    #[test]
    fn vliw_memory_round_trip(
        dst in any::<(bool, u8)>(),
        base in any::<(bool, u8)>(),
        off in 0u8..32,
        op in prop_oneof![Just("LDW"), Just("LDH"), Just("LDB"), Just("LDHU"), Just("LDBU")],
    ) {
        let wb = vliw62::workbench().expect("builds");
        let decoder = Decoder::new(wb.model()).expect("decoder");
        let asm = Assembler::new(wb.model(), &decoder);
        let stmt = format!(
            "{op} *+ {}[{off}], {}",
            reg_name(base.0, base.1),
            reg_name(dst.0, dst.1)
        );
        let decoded = asm.assemble_instruction(&stmt).expect("assembles");
        let word = decoded.encode(wb.model()).expect("encodes");
        let back = decoder.decode(word.to_u128()).expect("decodes");
        prop_assert_eq!(asm.disassemble(&back), stmt);
    }

    /// Every 32-bit word either fails to decode or decodes to something
    /// that re-encodes to a word decoding to the same instruction
    /// (decode∘encode is idempotent even for non-canonical free bits).
    #[test]
    fn vliw_decode_encode_idempotent(word in any::<u32>()) {
        let wb = vliw62::workbench().expect("builds");
        let decoder = Decoder::new(wb.model()).expect("decoder");
        if let Ok(decoded) = decoder.decode(u128::from(word)) {
            let encoded = decoded.encode(wb.model()).expect("encodes");
            let again = decoder.decode(encoded.to_u128()).expect("re-decodes");
            prop_assert_eq!(&decoded, &again, "decode is stable under re-encoding");
        }
    }

    /// The tinyrisc assembler never panics on arbitrary printable input.
    #[test]
    fn assembler_is_total(input in "\\PC{0,60}") {
        let wb = tinyrisc::workbench().expect("builds");
        let decoder = Decoder::new(wb.model()).expect("decoder");
        let asm = Assembler::new(wb.model(), &decoder);
        let _ = asm.assemble_instruction(&input);
    }

    /// The program assembler never panics on arbitrary multi-line input.
    #[test]
    fn program_assembler_is_total(input in "[ -~\\n]{0,120}") {
        let wb = tinyrisc::workbench().expect("builds");
        let asm = lisa::asm::Assembler::new(wb.model());
        let _ = asm.assemble(&input);
    }

    /// tinyrisc: every 16-bit word with a valid opcode decodes, and the
    /// disassembly re-assembles to an instruction with identical
    /// architectural effect (same canonical encoding).
    #[test]
    fn tinyrisc_word_canonicalisation(word in any::<u16>()) {
        let wb = tinyrisc::workbench().expect("builds");
        let decoder = Decoder::new(wb.model()).expect("decoder");
        let asm = Assembler::new(wb.model(), &decoder);
        if let Ok(decoded) = decoder.decode(u128::from(word)) {
            let text = asm.disassemble(&decoded);
            let re = asm.assemble_instruction(&text)
                .unwrap_or_else(|e| panic!("canonical text must re-assemble: {text:?}: {e}"));
            let canon1 = decoded.encode(wb.model()).expect("encodes").to_u128();
            let canon2 = re.encode(wb.model()).expect("encodes").to_u128();
            prop_assert_eq!(canon1, canon2, "text: {}", text);
        }
    }
}

//! Instruction-level-parallelism accounting on vliw62: a hand-packed
//! kernel must beat its serial equivalent by exactly the packets saved —
//! the kind of schedule comparison a cycle-accurate model exists to
//! support (paper §1: performance of "complex pipeline mechanisms …
//! cannot be covered by models which just accumulate instruction
//! latencies").

use lisa::models::vliw62;
use lisa::models::Workbench;
use lisa::sim::SimMode;

const N: usize = 24;

fn dot_serial() -> String {
    format!(
        r#"
        MVK A10, 0
        MVK B10, 1024
        MVK B0, {N}
        MVK B9, 1
        ZERO A9
loop:   LDH *+A10[0], A3
        LDH *+B10[0], B3
        ADDK A10, 2
        ADDK B10, 2
        SUB .L B0, B0, B9
        NOP 1
        NOP 1
        MPY A4, A3, B3
        NOP 1
        ADD .L A9, A9, A4
        [B0] B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        HALT
"#
    )
}

/// The same computation with packed execute packets: dual loads, fused
/// pointer/counter updates, and the branch issued in parallel with the
/// accumulate.
fn dot_packed() -> String {
    format!(
        r#"
        MVK A10, 0
     || MVK B10, 1024
     || MVK B0, {N}
     || MVK B9, 1
        ZERO A9
loop:   LDH *+A10[0], A3
     || LDH *+B10[0], B3
        ADDK A10, 2
     || ADDK B10, 2
     || SUB .L B0, B0, B9
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        MPY A4, A3, B3
        NOP 1
        ADD .L A9, A9, A4
     || [B0] B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        HALT
"#
    )
}

fn run(wb: &Workbench, source: &str) -> (u64, i64) {
    let program = lisa::asm::Assembler::with_packet(wb.model(), vliw62::FETCH_PACKET, 1)
        .assemble(source)
        .expect("assembles");
    let mut sim = wb.simulator(SimMode::Compiled).expect("sim");
    sim.load_program("pmem", &program.words).unwrap();
    let dmem = wb.model().resource_by_name("dmem").unwrap().clone();
    for i in 0..N as i64 {
        let x = (i * 3) % 13 - 6;
        let y = (i * 7) % 11 - 5;
        for (base, v) in [(2 * i, x), (1024 + 2 * i, y)] {
            sim.state_mut().write_int(&dmem, &[base], v & 0xFF).unwrap();
            sim.state_mut().write_int(&dmem, &[base + 1], (v >> 8) & 0xFF).unwrap();
        }
    }
    let halt = wb.model().resource_by_name("halt").unwrap().clone();
    let cycles = sim
        .run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, 50_000)
        .expect("halts")
        .cycles;
    let a = wb.model().resource_by_name("A").unwrap();
    (cycles, sim.state().read_int(a, &[9]).unwrap())
}

#[test]
fn packing_reduces_cycles_without_changing_results() {
    let wb = vliw62::workbench().expect("builds");
    let (serial_cycles, serial_result) = run(&wb, &dot_serial());
    let (packed_cycles, packed_result) = run(&wb, &dot_packed());

    assert_eq!(serial_result, packed_result, "same arithmetic");
    // Golden dot product.
    let golden: i64 = (0..N as i64).map(|i| ((i * 3) % 13 - 6) * ((i * 7) % 11 - 5)).sum();
    assert_eq!(serial_result, golden);

    // Naive packet accounting says 2 packets saved per iteration
    // (16 → 14). The cycle-accurate model shows only 1 is real: the dual
    // load's result arrives a cycle later relative to the MPY (one extra
    // delay-slot NOP), and the 3-slot packet straddles a fetch-packet
    // boundary, inserting a pad NOP every iteration. Exactly the kind of
    // schedule interaction the paper says latency-summing models miss.
    let saved = serial_cycles - packed_cycles;
    assert_eq!(saved, N as u64 + 3, "serial {serial_cycles} vs packed {packed_cycles}");
    let speedup = serial_cycles as f64 / packed_cycles as f64;
    assert!(speedup > 1.05, "ILP packing is visible: {speedup:.2}x");
}

//! Integration tests of the `lisa-exec` batch engine through the
//! top-level facade: worker-count determinism, backend agreement, and
//! failure isolation on real models.

use lisa::exec::{BatchRunner, Scenario};
use lisa::models::kernels::{accu_dot_product, tiny_fib, vliw_dot_product};
use lisa::models::{accu16, tinyrisc, vliw62, Workbench};
use lisa::sim::SimMode;

/// A small cross-model matrix: three architectures, two backends each.
fn small_matrix() -> Vec<(Workbench, Vec<lisa::models::kernels::Kernel>)> {
    vec![
        (vliw62::workbench().expect("vliw62 builds"), vec![vliw_dot_product(8)]),
        (accu16::workbench().expect("accu16 builds"), vec![accu_dot_product(8)]),
        (tinyrisc::workbench().expect("tinyrisc builds"), vec![tiny_fib(12)]),
    ]
}

fn scenarios(matrix: &[(Workbench, Vec<lisa::models::kernels::Kernel>)]) -> Vec<Scenario<'_>> {
    matrix
        .iter()
        .flat_map(|(wb, kernels)| {
            kernels.iter().flat_map(move |k| {
                [SimMode::Interpretive, SimMode::Compiled]
                    .into_iter()
                    .map(move |mode| wb.scenario(k, mode))
            })
        })
        .collect()
}

#[test]
fn batch_results_do_not_depend_on_worker_count() {
    let matrix = small_matrix();
    let scenarios = scenarios(&matrix);
    assert_eq!(scenarios.len(), 6);

    let solo = BatchRunner::new(1).run(&scenarios);
    let pooled = BatchRunner::new(4).run(&scenarios);
    assert!(solo.all_passed(), "failures:\n{}", solo.table());
    assert_eq!(solo.jobs, pooled.jobs, "job outcomes must not depend on worker count");
    assert_eq!(solo.workers, 1);
    assert_eq!(pooled.workers, 4);
}

#[test]
fn interpretive_and_compiled_backends_agree_within_a_batch() {
    let matrix = small_matrix();
    let scenarios = scenarios(&matrix);
    let report = BatchRunner::new(2).run(&scenarios);
    assert!(report.all_passed(), "failures:\n{}", report.table());

    // Scenarios come in (Interpretive, Compiled) pairs per kernel; each
    // pair must agree on both cycle count and final state digest.
    for pair in report.jobs.chunks(2) {
        let interp = pair[0].result.as_ref().expect("interpretive job passed");
        let compiled = pair[1].result.as_ref().expect("compiled job passed");
        assert_eq!(interp.cycles, compiled.cycles, "{}: cycle mismatch", pair[0].name);
        assert_eq!(interp.state_digest, compiled.state_digest, "{}: state mismatch", pair[0].name);
    }
}

#[test]
fn a_failing_check_is_isolated_to_its_own_job() {
    let wb = tinyrisc::workbench().expect("tinyrisc builds");
    let kernel = tiny_fib(10);
    let good = wb.scenario(&kernel, SimMode::Interpretive);
    let mut bad = wb.scenario(&kernel, SimMode::Compiled);
    for check in &mut bad.checks {
        check.expected += 1;
    }

    let report = BatchRunner::new(2).run(&[good, bad]);
    assert!(!report.all_passed());
    assert_eq!(report.failures().len(), 1);
    assert!(report.jobs[0].result.is_ok(), "good job must be unaffected");
    assert!(report.jobs[1].result.is_err());
    assert!(report.table().contains("FAIL"), "{}", report.table());
}

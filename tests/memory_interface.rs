//! Memory-interface timing on vliw62 (paper §4: the C6201 model includes
//! the memory interface): accesses to the configured external region
//! stall the pipeline for the programmed number of wait states, visible
//! as exact cycle-count differences.

use lisa::models::vliw62::{self, assemble_packets};
use lisa::models::Workbench;
use lisa::sim::SimMode;

fn cycles_for(wb: &Workbench, packets: &[&[&str]]) -> (u64, i64) {
    let (words, _) = assemble_packets(wb, packets).expect("assembles");
    let mut sim = wb.simulator(SimMode::Compiled).expect("sim");
    sim.load_program("pmem", &words).unwrap();
    // Preload a recognisable word in both regions.
    let dmem = wb.model().resource_by_name("dmem").unwrap().clone();
    for base in [128i64, 3072] {
        sim.state_mut().write_int(&dmem, &[base], 0x77).unwrap();
    }
    let halt = wb.model().resource_by_name("halt").unwrap().clone();
    let cycles =
        sim.run_until(|st| st.read_int(&halt, &[]).unwrap_or(0) != 0, 5_000).expect("halts").cycles;
    let a = wb.model().resource_by_name("A").unwrap();
    (cycles, sim.state().read_int(a, &[3]).unwrap())
}

/// One internal load vs one external load: the difference is exactly the
/// configured wait states.
#[test]
fn external_accesses_cost_exact_wait_states() {
    let wb = vliw62::workbench().expect("builds");
    for ws in [1i64, 3, 7] {
        let ldext = format!("LDEXT 8, {ws}"); // external at byte 2048+
        let ldext_packet: [&str; 1] = [ldext.as_str()];
        let internal: Vec<&[&str]> = vec![
            &ldext_packet,
            &["MVK A10, 128"], // internal address
            &["LDW *+A10[0], A3"],
            &["NOP 5"],
            &["HALT"],
        ];
        let external: Vec<&[&str]> = vec![
            &ldext_packet,
            &["MVK A10, 3072"], // external address
            &["LDW *+A10[0], A3"],
            &["NOP 5"],
            &["HALT"],
        ];
        let (fast, v1) = cycles_for(&wb, &internal);
        let (slow, v2) = cycles_for(&wb, &external);
        assert_eq!(v1, 0x77, "internal load result");
        assert_eq!(v2, 0x77, "external load result");
        assert_eq!(slow - fast, ws as u64, "external access must cost exactly {ws} extra cycles");
    }
}

/// Wait states apply to stores too, and zero wait states are free.
#[test]
fn store_wait_states_and_zero_config() {
    let wb = vliw62::workbench().expect("builds");
    // Trailing packets after the store make the dispatch stall visible
    // (instructions already in flight when the store executes are not
    // affected, exactly like the multicycle NOP).
    let baseline: Vec<&[&str]> = vec![
        &["LDEXT 8, 0"],
        &["MVK A10, 3072"],
        &["MVK A2, 5"],
        &["STW A2, *+A10[0]"],
        &["MVK A3, 1"],
        &["MVK A4, 1"],
        &["MVK A5, 1"],
        &["HALT"],
    ];
    let with_ws: Vec<&[&str]> = vec![
        &["LDEXT 8, 4"],
        &["MVK A10, 3072"],
        &["MVK A2, 5"],
        &["STW A2, *+A10[0]"],
        &["MVK A3, 1"],
        &["MVK A4, 1"],
        &["MVK A5, 1"],
        &["HALT"],
    ];
    let (fast, _) = cycles_for(&wb, &baseline);
    let (slow, _) = cycles_for(&wb, &with_ws);
    assert_eq!(slow - fast, 4, "store to external memory pays the wait states");
}

/// With no external region configured (reset state), nothing stalls.
#[test]
fn unconfigured_memory_interface_is_transparent() {
    let wb = vliw62::workbench().expect("builds");
    let plain: Vec<&[&str]> =
        vec![&["MVK A10, 3072"], &["LDW *+A10[0], A3"], &["NOP 5"], &["HALT"]];
    let (c1, v) = cycles_for(&wb, &plain);
    assert_eq!(v, 0x77);
    // Same program with an explicit zero-wait-state external region.
    let zero_ws: Vec<&[&str]> =
        vec![&["LDEXT 8, 0"], &["MVK A10, 3072"], &["LDW *+A10[0], A3"], &["NOP 5"], &["HALT"]];
    let (c2, _) = cycles_for(&wb, &zero_ws);
    assert_eq!(c2, c1 + 1, "only the extra LDEXT packet differs");
}

/// Backends agree cycle-by-cycle with wait states active.
#[test]
fn backends_agree_with_wait_states() {
    let wb = vliw62::workbench().expect("builds");
    let packets: Vec<&[&str]> = vec![
        &["LDEXT 8, 3"],
        &["MVK A10, 3072"],
        &["LDW *+A10[0], A3"],
        &["STW A3, *+A10[4]"],
        &["NOP 5"],
        &["HALT"],
    ];
    let (words, _) = assemble_packets(&wb, &packets).expect("assembles");
    let mut interp = wb.simulator(SimMode::Interpretive).unwrap();
    let mut compiled = wb.simulator(SimMode::Compiled).unwrap();
    for sim in [&mut interp, &mut compiled] {
        sim.load_program("pmem", &words).unwrap();
    }
    for cycle in 0..40 {
        interp.step().unwrap();
        compiled.step().unwrap();
        assert_eq!(interp.state(), compiled.state(), "diverged at cycle {cycle}");
    }
}

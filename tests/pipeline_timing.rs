//! Experiment E7 — pipeline mechanism timing on the vliw62 model: fetch
//! pipeline fill, load/multiply delay slots, branch delay slots, and the
//! multicycle-NOP stall of paper Example 5. Each test pins the exact
//! cycle distances the model exhibits, which are also the C62x's
//! documented values.

use lisa::models::vliw62::{self, assemble_packets};
use lisa::models::Workbench;
use lisa::sim::{SimMode, Simulator};

fn run<'m>(wb: &'m Workbench, packets: &[&[&str]]) -> Simulator<'m> {
    let (words, _) = assemble_packets(wb, packets).expect("assembles");
    let mut sim = wb.simulator(SimMode::Interpretive).expect("sim");
    sim.load_program("pmem", &words).unwrap();
    wb.run_to_halt(&mut sim, 5_000).expect("halts");
    sim
}

fn a_reg(sim: &Simulator<'_>, wb: &Workbench, i: i64) -> i64 {
    sim.state().read_int(wb.model().resource_by_name("A").unwrap(), &[i]).unwrap()
}

/// Cycle cost of an empty program: the fetch pipeline fill plus the
/// dispatch-to-E1 skew. Pinning it catches accidental pipeline-depth
/// changes.
#[test]
fn empty_program_cost_is_the_pipeline_fill() {
    let wb = vliw62::workbench().expect("builds");
    let sim = run(&wb, &[&["HALT"]]);
    // PG..DP fill (4 inter-stage cycles) + DC→E1 activation skew (2) +
    // the halt-observing step itself.
    assert_eq!(sim.stats().cycles, 7, "pipeline fill depth changed");
}

/// Every extra serial execute packet costs exactly one cycle.
#[test]
fn serial_dispatch_is_one_packet_per_cycle() {
    let wb = vliw62::workbench().expect("builds");
    let mut last = 0;
    for n in [1usize, 4, 9, 17] {
        let mut packets: Vec<&[&str]> = Vec::new();
        for _ in 0..n {
            packets.push(&["NOP 1"]);
        }
        packets.push(&["HALT"]);
        let sim = run(&wb, &packets);
        let cycles = sim.stats().cycles;
        if last != 0 {
            // Difference between consecutive sizes is the packet count delta.
            assert_eq!(cycles - last, (n - last_n(n)) as u64, "n={n}");
        }
        last = cycles;
    }

    fn last_n(n: usize) -> usize {
        match n {
            4 => 1,
            9 => 4,
            17 => 9,
            _ => 0,
        }
    }
}

/// A fully parallel packet (8 slots) costs one cycle, like one serial
/// instruction.
#[test]
fn parallel_packet_costs_one_cycle() {
    let wb = vliw62::workbench().expect("builds");
    let serial = run(&wb, &[&["MVK A2, 1"], &["HALT"]]);
    let parallel = run(
        &wb,
        &[
            &[
                "MVK A2, 1",
                "MVK A3, 2",
                "MVK A4, 3",
                "MVK A5, 4",
                "MVK B4, 5",
                "MVK B5, 6",
                "MVK B6, 7",
            ],
            &["HALT"],
        ],
    );
    assert_eq!(serial.stats().cycles, parallel.stats().cycles);
    assert_eq!(a_reg(&parallel, &wb, 5), 4);
}

/// MPY: exactly one delay slot (C62x value).
#[test]
fn multiply_delay_is_exactly_one_cycle() {
    let wb = vliw62::workbench().expect("builds");
    let sim = run(
        &wb,
        &[
            &["MVK A2, 21"],
            &["MPY A3, A2, A2"],
            &["MV .L A4, A3"], // delay slot: old value
            &["MV .L A5, A3"], // first visible
            &["HALT"],
        ],
    );
    assert_eq!(a_reg(&sim, &wb, 4), 0);
    assert_eq!(a_reg(&sim, &wb, 5), 441);
}

/// LDW: exactly four delay slots (C62x value).
#[test]
fn load_delay_is_exactly_four_cycles() {
    let wb = vliw62::workbench().expect("builds");
    let (words, _) = assemble_packets(
        &wb,
        &[
            &["MVK A10, 128"],
            &["LDW *+A10[0], A2"],
            &["MV .L A3, A2"],
            &["MV .L A4, A2"],
            &["MV .L A5, A2"],
            &["MV .L A6, A2"],
            &["MV .L A7, A2"],
            &["HALT"],
        ],
    )
    .expect("assembles");
    let mut sim = wb.simulator(SimMode::Interpretive).expect("sim");
    sim.load_program("pmem", &words).unwrap();
    let dmem = wb.model().resource_by_name("dmem").unwrap().clone();
    sim.state_mut().write_int(&dmem, &[128], 0x5A).unwrap();
    wb.run_to_halt(&mut sim, 5_000).expect("halts");
    assert_eq!(
        [
            a_reg(&sim, &wb, 3),
            a_reg(&sim, &wb, 4),
            a_reg(&sim, &wb, 5),
            a_reg(&sim, &wb, 6),
            a_reg(&sim, &wb, 7)
        ],
        [0, 0, 0, 0, 0x5A],
        "exactly four delay slots"
    );
}

/// Branch: exactly five delay-slot execute packets run; the sixth
/// fall-through packet is annulled (C62x value).
#[test]
fn branch_executes_exactly_five_delay_slots() {
    let wb = vliw62::workbench().expect("builds");
    let packets: Vec<&[&str]> = vec![
        &["MVK B2, 1"], // predicate source
        &["[B2] B 9"],  // taken branch; target = packet `land` below
        &["MVK A2, 1"], // ds 1
        &["MVK A3, 1"], // ds 2
        &["MVK A4, 1"], // ds 3
        &["MVK A5, 1"], // ds 4
        &["MVK A6, 1"], // ds 5 — last executed fall-through
        &["MVK A7, 1"], // annulled
        &["MVK A8, 1"], // annulled
        &["MVK A9, 1"], // land: target (word address 9)
        &["HALT"],
    ];
    let (words, labels) = assemble_packets(&wb, &packets).expect("assembles");
    assert_eq!(labels[9], 9, "branch target address");
    let mut sim = wb.simulator(SimMode::Interpretive).expect("sim");
    sim.load_program("pmem", &words).unwrap();
    wb.run_to_halt(&mut sim, 5_000).expect("halts");
    assert_eq!(
        (1..=8).map(|i| a_reg(&sim, &wb, i)).collect::<Vec<_>>(),
        vec![0, 1, 1, 1, 1, 1, 0, 0],
        "A2..A6 (five delay slots) execute; A7..A8 are annulled"
    );
    assert_eq!(a_reg(&sim, &wb, 9), 1, "execution continues at the target");
}

/// A not-taken branch annuls nothing.
#[test]
fn untaken_branch_falls_through() {
    let wb = vliw62::workbench().expect("builds");
    let sim = run(
        &wb,
        &[
            &["MVK B2, 0"],
            &["[B2] B 0"], // never taken
            &["MVK A2, 7"],
            &["HALT"],
        ],
    );
    assert_eq!(a_reg(&sim, &wb, 2), 7);
    assert_eq!(sim.stats().flushes, 0, "an untaken branch flushes nothing");
}

/// NOP n stalls dispatch for n-1 cycles beyond NOP 1 (paper Example 5's
/// multicycle NOP).
#[test]
fn multicycle_nop_scales_linearly() {
    let wb = vliw62::workbench().expect("builds");
    let base = run(&wb, &[&["NOP 1"], &["HALT"]]).stats().cycles;
    for n in 2..=9 {
        let nop = format!("NOP {n}");
        let first: [&str; 1] = [nop.as_str()];
        let packets: Vec<&[&str]> = vec![&first, &["HALT"]];
        let cycles = run(&wb, &packets).stats().cycles;
        assert_eq!(cycles - base, (n - 1) as u64, "NOP {n}");
    }
}

/// Stall statistics are recorded while the multicycle NOP holds DP/DC.
#[test]
fn stall_statistics_reflect_the_nop() {
    let wb = vliw62::workbench().expect("builds");
    let sim = run(&wb, &[&["NOP 5"], &["HALT"]]);
    assert_eq!(sim.stats().stalls, 8, "two stall calls per held cycle");
}

/// Back-to-back loads pipeline through the in-flight queue without
/// interfering (queue depth covers 4 concurrent loads).
#[test]
fn overlapping_loads_all_retire() {
    let wb = vliw62::workbench().expect("builds");
    let (words, _) = assemble_packets(
        &wb,
        &[
            &["MVK A10, 64"],
            &["LDW *+A10[0], A2"],
            &["LDW *+A10[1], A3"],
            &["LDW *+A10[2], A4"],
            &["LDW *+A10[3], A5"],
            &["NOP 5"],
            &["HALT"],
        ],
    )
    .expect("assembles");
    let mut sim = wb.simulator(SimMode::Compiled).expect("sim");
    sim.load_program("pmem", &words).unwrap();
    let dmem = wb.model().resource_by_name("dmem").unwrap().clone();
    for i in 0..4 {
        sim.state_mut().write_int(&dmem, &[64 + 4 * i], 10 + i).unwrap();
    }
    wb.run_to_halt(&mut sim, 5_000).expect("halts");
    assert_eq!(
        [a_reg(&sim, &wb, 2), a_reg(&sim, &wb, 3), a_reg(&sim, &wb, 4), a_reg(&sim, &wb, 5)],
        [10, 11, 12, 13]
    );
}

/// Two loads in one execute packet (the two D units): both retire after
/// the same four delay slots via the dual in-flight queues.
#[test]
fn dual_issued_loads_both_retire() {
    let wb = vliw62::workbench().expect("builds");
    let (words, _) = assemble_packets(
        &wb,
        &[
            &["MVK A10, 64", "MVK B10, 96"],
            &["LDW *+A10[0], A2", "LDW *+B10[0], B6"],
            &["MV .L A3, A2", "MV .L B7, B6"], // last delay slot pair sees 0
            &["NOP 3"],
            &["MV .L A4, A2", "MV .L B8, B6"], // after the delay slots
            &["HALT"],
        ],
    )
    .expect("assembles");
    let mut sim = wb.simulator(SimMode::Interpretive).expect("sim");
    sim.load_program("pmem", &words).unwrap();
    let dmem = wb.model().resource_by_name("dmem").unwrap().clone();
    sim.state_mut().write_int(&dmem, &[64], 0x11).unwrap();
    sim.state_mut().write_int(&dmem, &[96], 0x22).unwrap();
    wb.run_to_halt(&mut sim, 5_000).expect("halts");
    let b = wb.model().resource_by_name("B").unwrap().clone();
    assert_eq!(a_reg(&sim, &wb, 3), 0, "A-side delay slot");
    assert_eq!(sim.state().read_int(&b, &[7]).unwrap(), 0, "B-side delay slot");
    assert_eq!(a_reg(&sim, &wb, 4), 0x11, "A-side load retires");
    assert_eq!(sim.state().read_int(&b, &[8]).unwrap(), 0x22, "B-side load retires");
}

//! Integration tests for the HTTP service: a real server on an
//! ephemeral loopback port, poked with raw `TcpStream`s — happy paths
//! for every endpoint plus the rude-client gauntlet (malformed request
//! lines, oversized headers, Content-Length abuse, early disconnects).
//! The server must never panic and every answered request must get a
//! well-formed status line.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use lisa::metrics::json;
use lisa::serve::{AppState, ServeConfig, Server, ServerHandle};

/// Boots a server on an ephemeral port; returns the address, a shutdown
/// handle, the shared state (for metric inspection) and the join handle.
fn boot(
    workers: usize,
    queue: usize,
    timeout_ms: u64,
) -> (SocketAddr, ServerHandle, Arc<AppState>, std::thread::JoinHandle<()>) {
    let state = Arc::new(AppState::new());
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue,
        timeout: Duration::from_millis(timeout_ms),
        once: false,
        ..ServeConfig::default()
    };
    let server = Server::bind(config, Arc::clone(&state)).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle, state, join)
}

/// Sends raw bytes on a fresh connection and reads to EOF.
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    conn.write_all(bytes).expect("write request");
    let _ = conn.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    conn.read_to_end(&mut out).expect("read response");
    out
}

fn request(method: &str, target: &str, body: &str) -> Vec<u8> {
    format!(
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Splits a raw response into (status code, body), asserting the status
/// line is well formed.
fn parse_response(raw: &[u8]) -> (u16, Vec<u8>) {
    let text = String::from_utf8_lossy(raw);
    assert!(text.starts_with("HTTP/1.1 "), "malformed status line: {text:?}");
    let status: u16 = text["HTTP/1.1 ".len()..][..3].parse().expect("numeric status");
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("head terminator") + 4;
    (status, raw[head_end..].to_vec())
}

fn body_json(raw: &[u8]) -> json::Value {
    let (_, body) = parse_response(raw);
    json::parse(std::str::from_utf8(&body).expect("utf8 body")).expect("json body")
}

#[test]
fn all_endpoints_answer_their_happy_path() {
    let (addr, handle, _state, join) = boot(2, 16, 10_000);

    let raw = send_raw(addr, &request("GET", "/healthz", ""));
    let (status, body) = parse_response(&raw);
    assert_eq!((status, body.as_slice()), (200, &b"ok\n"[..]));

    let raw = send_raw(addr, &request("GET", "/v1/models", ""));
    assert_eq!(parse_response(&raw).0, 200);
    let models = body_json(&raw);
    let names: Vec<&str> = models
        .get("models")
        .and_then(json::Value::as_array)
        .expect("models array")
        .iter()
        .filter_map(|m| m.get("name").and_then(json::Value::as_str))
        .collect();
    assert!(names.contains(&"tinyrisc") && names.contains(&"vliw62"), "{names:?}");

    let asm =
        r#"{"model": "tinyrisc", "program": "LDI R1, 20\nLDI R2, 22\nADD R3, R1, R2\nHLT\n"}"#;
    let raw = send_raw(addr, &request("POST", "/v1/assemble", asm));
    assert_eq!(parse_response(&raw).0, 200);
    let words = body_json(&raw);
    assert_eq!(words.get("words").and_then(json::Value::as_array).expect("words").len(), 4);

    let sim = r#"{"model": "tinyrisc", "program": "LDI R1, 20\nLDI R2, 22\nADD R3, R1, R2\nHLT\n", "dump": [["R", 4]], "probes": ["reg R[3]"]}"#;
    let raw = send_raw(addr, &request("POST", "/v1/simulate", sim));
    assert_eq!(parse_response(&raw).0, 200);
    let outcome = body_json(&raw);
    assert_eq!(outcome.get("halted").and_then(json::Value::as_bool), Some(true));
    let regs = outcome
        .get("dump")
        .and_then(|d| d.get("R"))
        .and_then(json::Value::as_array)
        .expect("R dump");
    assert_eq!(regs[3].as_i64(), Some(42));
    let probes = outcome.get("probes").expect("probe report");
    assert_eq!(probes.get("reg R[3]").and_then(json::Value::as_u64), Some(1));

    // The simulate run above fed the merged architectural profile.
    let raw = send_raw(addr, &request("GET", "/v1/debug/arch", ""));
    assert_eq!(parse_response(&raw).0, 200);
    let arch = body_json(&raw);
    assert!(arch.get("cycles").and_then(json::Value::as_u64).unwrap_or(0) > 0, "{arch:?}");

    let raw =
        send_raw(addr, &request("POST", "/v1/batch", r#"{"mode": "compiled", "workers": 2}"#));
    assert_eq!(parse_response(&raw).0, 200);
    let batch = body_json(&raw);
    assert_eq!(batch.get("failed").and_then(json::Value::as_u64), Some(0));
    assert!(batch.get("jobs").and_then(json::Value::as_u64).unwrap_or(0) > 0);

    let raw = send_raw(addr, &request("GET", "/metrics", ""));
    let (status, body) = parse_response(&raw);
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("metrics text");
    assert!(text.contains("lisa_serve_requests_total"), "{text}");
    assert!(text.contains("lisa_uptime_seconds"), "{text}");
    assert!(text.contains("lisa_metrics_scrapes_total 1"), "{text}");

    // A second scrape advances the scrape counter.
    let raw = send_raw(addr, &request("GET", "/metrics", ""));
    let (_, body) = parse_response(&raw);
    let text = String::from_utf8(body).expect("metrics text");
    assert!(text.contains("lisa_metrics_scrapes_total 2"), "{text}");

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn rude_clients_get_clean_errors_never_panics() {
    let (addr, handle, _state, join) = boot(2, 16, 1_000);

    // Malformed request line.
    let raw = send_raw(addr, b"NOT-HTTP\r\n\r\n");
    assert_eq!(parse_response(&raw).0, 400);
    let raw = send_raw(addr, b"GET /x HTTP/2.0\r\n\r\n");
    assert_eq!(parse_response(&raw).0, 505);

    // Oversized header block.
    let huge = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(64 * 1024));
    let raw = send_raw(addr, huge.as_bytes());
    assert_eq!(parse_response(&raw).0, 431);

    // Oversized request line.
    let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "q".repeat(64 * 1024));
    let raw = send_raw(addr, long_target.as_bytes());
    assert_eq!(parse_response(&raw).0, 414);

    // POST without Content-Length.
    let raw = send_raw(addr, b"POST /v1/assemble HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(parse_response(&raw).0, 411);

    // Unparseable Content-Length.
    let raw = send_raw(addr, b"POST /v1/assemble HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
    assert_eq!(parse_response(&raw).0, 400);

    // Chunked bodies are declared unsupported, not mis-framed.
    let raw = send_raw(
        addr,
        b"POST /v1/assemble HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
    );
    assert_eq!(parse_response(&raw).0, 501);

    // Unknown path and wrong method.
    let raw = send_raw(addr, &request("GET", "/nope", ""));
    assert_eq!(parse_response(&raw).0, 404);
    let raw = send_raw(addr, &request("DELETE", "/healthz", ""));
    assert_eq!(parse_response(&raw).0, 405);

    // Early disconnect mid-body: declared 100 bytes, sent 5, hung up.
    {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(b"POST /v1/assemble HTTP/1.1\r\nContent-Length: 100\r\n\r\nhello")
            .expect("partial write");
        drop(conn); // vanish without completing the body
    }

    // Early disconnect before any bytes at all.
    drop(TcpStream::connect(addr).expect("connect"));

    // The server is still alive and sane after all of the above.
    let raw = send_raw(addr, &request("GET", "/healthz", ""));
    assert_eq!(parse_response(&raw).0, 200);

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn fuzz_endpoint_reports_coverage_and_metrics_over_http() {
    let (addr, handle, _state, join) = boot(2, 16, 120_000);

    let body = r#"{"model": "tinyrisc", "seed_count": 20, "max_len": 12, "max_cycles": 2000}"#;
    let raw = send_raw(addr, &request("POST", "/v1/fuzz", body));
    assert_eq!(parse_response(&raw).0, 200);
    let report = body_json(&raw);
    assert_eq!(report.get("iterations").and_then(json::Value::as_u64), Some(20));
    assert_eq!(report.get("passed").and_then(json::Value::as_bool), Some(true));
    assert_eq!(report.get("stopped").and_then(json::Value::as_bool), Some(false));
    let paths = report
        .get("coverage")
        .and_then(|c| c.get("paths"))
        .and_then(json::Value::as_u64)
        .unwrap_or(0);
    assert!(paths > 0, "a real run covers at least one coding-tree path");
    let map = report
        .get("coverage")
        .and_then(|c| c.get("map"))
        .and_then(|m| m.get("paths"))
        .expect("coverage.map.paths object");
    // Path keys over the wire are 16-hex-digit strings.
    if let json::Value::Obj(entries) = map {
        assert_eq!(entries.len() as u64, paths);
        for (key, _) in entries {
            assert!(
                key.len() == 16 && key.chars().all(|c| c.is_ascii_hexdigit()),
                "bad path key {key:?}"
            );
        }
    } else {
        panic!("coverage.map.paths is not an object: {map:?}");
    }
    assert_eq!(
        report.get("reproducers").and_then(json::Value::as_array).map(<[json::Value]>::len),
        Some(0)
    );

    // The run surfaces in the lisa_fuzz_* metric family.
    let raw = send_raw(addr, &request("GET", "/metrics", ""));
    let (_, body) = parse_response(&raw);
    let text = String::from_utf8(body).expect("metrics text");
    assert!(text.contains(r#"lisa_fuzz_programs_total{model="tinyrisc"} 20"#), "{text}");
    assert!(text.contains("lisa_fuzz_paths_covered"), "{text}");
    assert!(text.contains(r#"lisa_fuzz_divergences_total{model="tinyrisc"} 0"#), "{text}");

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn fuzz_endpoint_validates_requests_over_http() {
    let (addr, handle, _state, join) = boot(2, 16, 10_000);

    // Unknown model: 404.
    let raw = send_raw(addr, &request("POST", "/v1/fuzz", r#"{"model": "pdp11"}"#));
    assert_eq!(parse_response(&raw).0, 404);
    assert!(body_json(&raw).get("error").is_some());

    // Malformed ranges: well-formed JSON, semantically invalid → 422.
    for body in [
        r#"{"model": "tinyrisc", "seed_count": 0}"#,
        r#"{"model": "tinyrisc", "seed_count": 10000000}"#,
        r#"{"model": "tinyrisc", "seed_start": 18446744073709551615, "seed_count": 2}"#,
        r#"{"model": "tinyrisc", "max_len": 0}"#,
        r#"{"model": "tinyrisc", "max_cycles": 0}"#,
    ] {
        let raw = send_raw(addr, &request("POST", "/v1/fuzz", body));
        assert_eq!(parse_response(&raw).0, 422, "expected 422 for {body}");
        assert!(body_json(&raw).get("error").is_some(), "{body}");
    }

    // Broken JSON: 400. Wrong method: 405.
    let raw = send_raw(addr, &request("POST", "/v1/fuzz", "{not json"));
    assert_eq!(parse_response(&raw).0, 400);
    let raw = send_raw(addr, &request("GET", "/v1/fuzz", ""));
    assert_eq!(parse_response(&raw).0, 405);

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn fuzz_self_check_round_trips_a_shrunk_reproducer() {
    let (addr, handle, _state, join) = boot(2, 16, 120_000);

    let body = r#"{"model": "tinyrisc", "seed_count": 4, "self_check": true}"#;
    let raw = send_raw(addr, &request("POST", "/v1/fuzz", body));
    assert_eq!(parse_response(&raw).0, 200);
    let report = body_json(&raw);
    assert_eq!(report.get("self_check_caught").and_then(json::Value::as_bool), Some(true));
    assert_eq!(report.get("passed").and_then(json::Value::as_bool), Some(false));
    let reps = report.get("reproducers").and_then(json::Value::as_array).expect("reproducers");
    assert_eq!(reps.len(), 1, "the injected fault yields exactly one reproducer");
    let rep = &reps[0];
    assert_eq!(rep.get("model").and_then(json::Value::as_str), Some("tinyrisc"));
    assert!(rep.get("oracle").and_then(json::Value::as_str).is_some());
    let hash = rep.get("content_hash").and_then(json::Value::as_str).expect("content_hash");
    assert!(hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()), "{hash}");
    let words = rep.get("words").and_then(json::Value::as_array).expect("words");
    // ddmin shrinks the injected at-cycle-0 fault to a tiny prefix (a
    // zero-word image is legitimate: the fault fires even on halt fill).
    assert!(words.len() <= 4, "not shrunk: {} words", words.len());
    for w in words {
        let text = w.as_str().expect("hex word");
        assert!(text.starts_with("0x"), "{text}");
    }

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn fuzz_deadline_exhaustion_maps_to_504() {
    // A 50 ms deadline cannot survive a 100k-program assignment; the
    // guarded run must stop early and map to 504, not hang.
    let (addr, handle, _state, join) = boot(2, 16, 50);

    let body = r#"{"model": "tinyrisc", "seed_count": 100000, "max_len": 24}"#;
    let raw = send_raw(addr, &request("POST", "/v1/fuzz", body));
    assert_eq!(parse_response(&raw).0, 504);
    let err = body_json(&raw);
    let msg = err.get("error").and_then(json::Value::as_str).unwrap_or("");
    assert!(msg.contains("deadline"), "{msg}");

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let (addr, handle, _state, join) = boot(1, 8, 10_000);

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    for i in 0..3 {
        conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("write");
        // Read one full response (head + 3-byte body).
        loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                if buf.len() >= pos + 4 + 3 {
                    break;
                }
            }
            let n = conn.read(&mut chunk).expect("read");
            assert!(n > 0, "server closed early on request {i}");
            buf.extend_from_slice(&chunk[..n]);
        }
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 200"), "request {i}: {text:?}");
        assert!(text.contains("Connection: keep-alive"), "request {i}: {text:?}");
        buf.clear();
    }

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn simulate_budget_and_bad_requests_map_to_statuses() {
    let (addr, handle, _state, join) = boot(2, 16, 10_000);

    // Step budget exhausted: 200 with halted=false at the cap.
    let spin = r#"{"model": "tinyrisc", "program": "loop: JMP loop\n", "max_cycles": 64}"#;
    let raw = send_raw(addr, &request("POST", "/v1/simulate", spin));
    assert_eq!(parse_response(&raw).0, 200);
    let outcome = body_json(&raw);
    assert_eq!(outcome.get("halted").and_then(json::Value::as_bool), Some(false));
    assert_eq!(outcome.get("cycles").and_then(json::Value::as_u64), Some(64));

    // Unknown model: 404 with a JSON error body.
    let raw =
        send_raw(addr, &request("POST", "/v1/simulate", r#"{"model": "pdp11", "program": "HLT"}"#));
    assert_eq!(parse_response(&raw).0, 404);
    assert!(body_json(&raw).get("error").is_some());

    // Assembly error: 422.
    let raw = send_raw(
        addr,
        &request("POST", "/v1/assemble", r#"{"model": "tinyrisc", "program": "FROB R1\n"}"#),
    );
    assert_eq!(parse_response(&raw).0, 422);

    // Unknown simulation mode: 422 (well-formed JSON, invalid value),
    // with a diagnostic naming the valid set.
    let raw = send_raw(
        addr,
        &request(
            "POST",
            "/v1/simulate",
            r#"{"model": "tinyrisc", "program": "HLT\n", "mode": "sideways"}"#,
        ),
    );
    assert_eq!(parse_response(&raw).0, 422);
    let err = body_json(&raw);
    let msg = err.get("error").and_then(json::Value::as_str).unwrap_or("");
    assert!(msg.contains("unknown mode `sideways`"), "{msg}");
    let raw =
        send_raw(addr, &request("POST", "/v1/batch", r#"{"mode": "sideways", "workers": 1}"#));
    assert_eq!(parse_response(&raw).0, 422);

    // The ops backend is a first-class mode over the wire.
    let ops = r#"{"model": "tinyrisc", "program": "LDI R1, 20\nLDI R2, 22\nADD R3, R1, R2\nHLT\n", "mode": "ops", "dump": [["R", 4]]}"#;
    let raw = send_raw(addr, &request("POST", "/v1/simulate", ops));
    assert_eq!(parse_response(&raw).0, 200);
    let outcome = body_json(&raw);
    assert_eq!(outcome.get("halted").and_then(json::Value::as_bool), Some(true));

    // Malformed JSON: 400.
    let raw = send_raw(addr, &request("POST", "/v1/simulate", "{not json"));
    assert_eq!(parse_response(&raw).0, 400);

    handle.shutdown();
    join.join().expect("server thread");
}
